"""Out-of-order core: config, dynamic instructions, plug-in interface."""

from repro.pipeline.branch_predictor import BranchPredictor
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU, CPUStats, SimulationError, run_on_cpu
from repro.pipeline.dyninst import DynInst, InstState, LQEntry, SilentState, SQEntry
from repro.pipeline.fastpath import FastPathCPU, FastPathStats
from repro.pipeline.plugins import (
    FF_EVERY_CYCLE, FF_PURE, FF_WAKEUP, OptimizationPlugin,
)
from repro.pipeline.presets import PRESETS
from repro.pipeline.smt import SMTCore
from repro.pipeline.trace import InstructionTrace, PipelineTracer

__all__ = [
    "BranchPredictor", "CPUConfig", "CPU", "CPUStats", "SimulationError",
    "run_on_cpu", "DynInst", "InstState", "LQEntry", "SilentState",
    "SQEntry", "FastPathCPU", "FastPathStats", "FF_EVERY_CYCLE",
    "FF_PURE", "FF_WAKEUP", "OptimizationPlugin", "PRESETS", "SMTCore",
    "InstructionTrace", "PipelineTracer",
]
