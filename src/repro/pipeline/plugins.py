"""Optimization plug-in interface.

Each microarchitectural optimization the paper studies is implemented as
a plug-in that hooks pipeline events.  The baseline core calls every hook
at a well-defined point in the cycle; a plug-in overrides only what it
needs:

===============================  =============================================
Hook                             Used by
===============================  =============================================
``on_dispatch``                  value prediction (predict at rename)
``execute_latency``              computation simplification, early-
                                 terminating multiplication
``lookup_reuse``                 computation reuse (memoization hit)
``on_result``                    computation reuse (table update), value
                                 prediction (verify), register-file
                                 compression (duplicate detection)
``on_load_response``             data memory-dependent prefetching (observe)
``on_store_address_resolved``    silent stores (request an SS-Load)
``pack_pair``                    pipeline compression (operand packing)
``provide_phys_reg`` /           register-file compression (extra rename
``reclaim_phys_reg``             headroom from value duplication)
``end_of_cycle``                 silent stores (port stealing), DMP
                                 (prefetch state machine)
===============================  =============================================

Fast-forward contract
---------------------

The fast-path core (:mod:`repro.pipeline.fastpath`) may skip over spans
of cycles in which provably nothing can change.  Because plug-in hooks
fire *inside* the cycle loop, every plug-in must declare whether that
is safe around it via ``ff_policy``:

``FF_PURE``
    Every hook is a pure function of the pipeline events that invoke it
    (dispatch, issue, writeback, commit, ...).  No hook does anything on
    a cycle with no pipeline activity, so skipping quiet cycles is
    exact.  This is true for most table-driven optimizations.
``FF_WAKEUP``
    The plug-in runs autonomous per-cycle work (``end_of_cycle`` state
    machines), but can bound it: :meth:`ff_next_cycle` returns the next
    cycle at which it may act, or ``None`` when it is idle.  Quiet
    cycles before that bound skip exactly.
``FF_EVERY_CYCLE``
    The plug-in makes no promise — the **default**, so an out-of-tree
    plug-in that never heard of fast-forward silently disables it
    (every cycle is ticked; results stay exact, just slower).  This is
    the "disabled" arm of the fast-path's disabled-or-exact guarantee.
"""

#: ``ff_policy`` values (see the module docstring).
FF_PURE = "pure"
FF_WAKEUP = "wakeup"
FF_EVERY_CYCLE = "every-cycle"


class OptimizationPlugin:
    """Base class: every hook is a no-op.  Subclass per optimization."""

    name = "base"

    #: Fast-forward declaration; see the module docstring.  The default
    #: is the conservative one: unknown plug-ins disable fast-forward.
    ff_policy = FF_EVERY_CYCLE

    def __init__(self):
        self.cpu = None

    def ff_next_cycle(self):
        """Earliest future cycle this plug-in may act on (or ``None``).

        Consulted by the fast-path core only when ``ff_policy`` is
        :data:`FF_WAKEUP`.  Returning ``None`` means "idle until some
        pipeline event re-arms me"; returning a cycle bounds the skip.
        """
        return None

    def attach(self, cpu):
        """Called once when the plug-in is registered with a core."""
        self.cpu = cpu

    @property
    def metrics(self):
        """The attached core's stats record (disabled when detached)."""
        from repro.stats import NULL_STATS
        cpu = self.cpu
        return cpu.metrics if cpu is not None else NULL_STATS

    @property
    def trace(self):
        """The attached core's trace buffer (disabled when detached).

        Plug-ins emit ``opt``-category events tagged with their MLD
        outcome in ``info``, so a trace attributes each timing
        perturbation to the optimization firing that caused it.
        """
        from repro.trace import NULL_TRACE
        cpu = self.cpu
        return cpu.trace if cpu is not None else NULL_TRACE

    def reset(self):
        """Clear persistent microarchitectural state (Uarch inputs)."""

    # --- dispatch/rename stage ------------------------------------------------
    def on_dispatch(self, dyn):
        """A dynamic instruction entered the window."""

    def provide_phys_reg(self):
        """Offer a physical register when the free list is empty.

        Returns a physical-register index from a plug-in managed pool, or
        ``None``.  Register-file compression uses this to model the extra
        rename headroom created by value duplication.
        """
        return None

    def reclaim_phys_reg(self, preg):
        """Offered register is being freed; return True if reclaimed."""
        return False

    # --- issue/execute stage --------------------------------------------------
    def execute_latency(self, dyn, default_latency):
        """Chance to shorten (or stretch) an instruction's latency."""
        return default_latency

    def lookup_reuse(self, dyn):
        """Return a memoized result for ``dyn`` or ``None``."""
        return None

    def pack_pair(self, first, second):
        """May ``first`` and ``second`` share one ALU slot this cycle?"""
        return False

    # --- writeback -----------------------------------------------------------
    def on_result(self, dyn, value):
        """An instruction produced its architectural result."""

    def on_commit(self, dyn):
        """An instruction retired (in order)."""

    def on_load_response(self, dyn, addr, value):
        """A demand load returned ``value`` from ``addr``."""

    # --- store pipeline ---------------------------------------------------------
    def on_store_address_resolved(self, entry):
        """A store-queue entry's address became known."""

    def on_store_performed(self, entry):
        """A store-queue entry wrote memory (or dequeued silently)."""

    # --- cycle boundary -----------------------------------------------------------
    def end_of_cycle(self, free_load_ports):
        """Called after issue; returns load ports consumed (int)."""
        return 0
