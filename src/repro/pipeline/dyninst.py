"""Dynamic (in-flight) instruction state for the out-of-order core.

A :class:`DynInst` is the paper's ``Inst`` MLD input made concrete: a
dynamic instance of a static instruction together with its operand and
result values as they become known in the pipeline.
"""

import enum


class InstState(enum.Enum):
    DISPATCHED = "dispatched"   # in ROB/RS, waiting on operands
    ISSUED = "issued"           # executing on a functional unit
    DONE = "done"               # result produced / address+data resolved
    COMMITTED = "committed"


class SilentState(enum.Enum):
    """Candidacy outcome of a store under the read-port-stealing scheme.

    The four cases of Figure 4 map onto these values: Case A ends SILENT,
    Case B ends NONSILENT, Case C (no free load port) and Case D (SS-Load
    returned after the store performed) end NO_CANDIDATE.
    """

    UNKNOWN = "unknown"
    SILENT = "silent"
    NONSILENT = "nonsilent"
    NO_CANDIDATE = "no-candidate"


class DynInst:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq", "inst", "pc", "state", "squashed",
        "src_pregs", "src_values", "pdst", "old_pdst", "result",
        "pred_taken", "pred_target", "issue_cycle", "done_cycle",
        "vp_predicted", "vp_value", "reused", "exec_info",
        "tmpl", "waits",
    )

    def __init__(self, seq, inst):
        self.stamp(seq, inst)

    def stamp(self, seq, inst):
        """(Re)initialize for a new dynamic instance of ``inst``.

        This is the whole-object reset the fast path's free-list pool
        relies on: recycling an object and stamping it is equivalent to
        constructing a fresh one.  Every slot must be (re)assigned here.
        """
        self.seq = seq
        self.inst = inst
        self.pc = inst.pc
        self.state = InstState.DISPATCHED
        self.squashed = False
        # src_pregs[i] is the physical register for source i, or None when
        # the source is x0 / unused (then src_values[i] is already final).
        self.src_pregs = [None, None]
        self.src_values = [0, 0]
        self.pdst = None
        self.old_pdst = None
        self.result = None
        self.pred_taken = False
        self.pred_target = None
        self.issue_cycle = None
        self.done_cycle = None
        self.vp_predicted = False
        self.vp_value = None
        self.reused = False
        self.exec_info = None  # free-form tag set by optimization plug-ins
        self.tmpl = None   # fast-path decoded template (reference: unused)
        self.waits = 0     # fast-path ready-list wait count (reference: unused)

    def __repr__(self):
        return (f"<DynInst #{self.seq} pc={self.pc} {self.inst.op.value} "
                f"{self.state.value}{' SQUASHED' if self.squashed else ''}>")


class SQEntry:
    """A store-queue entry (program-ordered)."""

    __slots__ = (
        "dyn", "addr", "width", "data", "addr_ready", "data_ready",
        "committed", "committed_cycle", "performed", "silent",
        "ss_load_issued", "ss_load_value", "ss_load_returned",
        "fill_requested", "fill_ready_cycle", "dequeue_cycle",
    )

    def __init__(self, dyn):
        self.dyn = dyn
        self.addr = None
        self.width = dyn.inst.width
        self.data = None
        self.addr_ready = False
        self.data_ready = False
        self.committed = False
        self.committed_cycle = None
        self.performed = False
        self.silent = SilentState.UNKNOWN
        self.ss_load_issued = False
        self.ss_load_value = None
        self.ss_load_returned = False
        self.fill_requested = False
        self.fill_ready_cycle = None
        self.dequeue_cycle = None

    def overlaps(self, addr, width):
        """Byte-range overlap test against another access."""
        if not self.addr_ready:
            return True  # unknown address: conservatively conflicts
        return self.addr < addr + width and addr < self.addr + self.width

    def __repr__(self):
        return (f"<SQEntry #{self.dyn.seq} addr={self.addr} "
                f"silent={self.silent.value} committed={self.committed} "
                f"performed={self.performed}>")


class LQEntry:
    """A load-queue entry."""

    __slots__ = ("dyn", "addr", "width", "issued_to_memory", "forwarded")

    def __init__(self, dyn):
        self.dyn = dyn
        self.addr = None
        self.width = dyn.inst.width
        self.issued_to_memory = False
        self.forwarded = False
