"""A two-thread SMT model (Section IV-B3's threat scenario).

Two hardware threads, each a full :class:`CPU` context (own fetch,
rename, ROB, LSQ, architectural state), sharing what real SMT siblings
share — and what the paper's attacks exploit:

* **issue ports** (ALU/load/store bandwidth per cycle) — the
  port-contention channel, and the arena where operand packing lets a
  receiver "set its own instruction operands such that the packing
  optimization occurs strictly as a function of a victim instruction's
  operands";
* **multiply/divide units** (non-pipelined, busy-until) — the
  SMoTherSpectre-style execution-unit contention channel;
* **the memory hierarchy** (caches, TLB) — the classic shared state;
* **optimization plug-in state** when the same plug-in instance is
  attached to both threads (e.g. one value-prediction table, one reuse
  buffer — the cross-thread priming the paper's IV-C4 attacks assume).

Threads advance in lockstep; issue priority round-robins each cycle.
"""

from repro.pipeline.cpu import CPU, SimulationError


class SMTCore:
    """Two CPUs in lockstep with shared execution resources."""

    def __init__(self, program_a, program_b, hierarchy, config_a=None,
                 config_b=None, plugins_a=(), plugins_b=(),
                 cpu_cls=CPU):
        # ``cpu_cls`` admits the fast-path core; note the SMT loop
        # drives threads via ``step()``, so idle-cycle fast-forward
        # never engages here — only the decode/work-list wins apply.
        self.thread_a = cpu_cls(program_a, hierarchy, config=config_a,
                                plugins=list(plugins_a))
        self.thread_b = cpu_cls(program_b, hierarchy, config=config_b,
                                plugins=list(plugins_b))
        # Share the per-cycle port budget and the arithmetic units.
        self.thread_b.ports = self.thread_a.ports
        self.thread_b.mul_busy_until = self.thread_a.mul_busy_until
        self.thread_b.div_busy_until = self.thread_a.div_busy_until
        self.thread_a._owns_ports = False
        self.thread_b._owns_ports = False
        self.cycle = 0

    @property
    def threads(self):
        return (self.thread_a, self.thread_b)

    def step(self):
        """One joint cycle; issue priority alternates between threads."""
        self.cycle += 1
        self.thread_a.refill_ports()
        order = (self.thread_a, self.thread_b)
        if self.cycle % 2:
            order = (self.thread_b, self.thread_a)
        for thread in order:
            if not thread.halted:
                thread.step()

    def run(self, max_cycles=1_000_000):
        """Run until both threads halt; returns (stats_a, stats_b)."""
        while not (self.thread_a.halted and self.thread_b.halted):
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"SMT pair exceeded {max_cycles} cycles")
            self.step()
        return self.thread_a.stats, self.thread_b.stats
