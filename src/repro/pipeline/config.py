"""Configuration for the out-of-order core.

The defaults model a small commercial-style OoO core (the paper's
"Baseline": out-of-order, speculative).  Attack experiments shrink
specific structures — e.g. Figure 6 uses a 5-entry store queue so that a
single long-to-dequeue store head-of-line blocks the pipeline.
"""

from dataclasses import asdict, dataclass, field


@dataclass
class CPUConfig:
    """Sizing and latency knobs for :class:`repro.pipeline.cpu.CPU`."""

    # Widths (instructions per cycle).
    fetch_width: int = 2
    dispatch_width: int = 2
    issue_width: int = 4
    commit_width: int = 2

    # Structure sizes.
    rob_size: int = 64
    rs_size: int = 32
    load_queue_size: int = 16
    store_queue_size: int = 8
    num_phys_regs: int = 96

    # Functional units and ports.
    num_alu_ports: int = 2
    num_mul_units: int = 1
    num_div_units: int = 1
    num_load_ports: int = 2
    num_store_ports: int = 1

    # Execution latencies (cycles).
    latency_alu: int = 1
    latency_mul: int = 4
    latency_div: int = 16
    latency_agen: int = 1
    latency_forward: int = 2

    # Store-queue behaviour.  In-order dequeue is required by the
    # amplification gadget (Section V-A1; the paper cites RISC-V BOOM).
    in_order_store_dequeue: bool = True
    # Committed stores drain lazily: cycles between commit and the
    # earliest dequeue attempt.  Gives the SS-Load (read-port stealing)
    # its window when the line is warm.
    store_dequeue_delay: int = 3

    # Branch prediction.
    use_branch_predictor: bool = True

    # Safety valve for runaway simulations.
    max_cycles: int = 2_000_000

    # Free-form bag for optimization plug-ins to stash settings.
    plugin_options: dict = field(default_factory=dict)

    def as_dict(self):
        """Plain-dict form, used for serialization and fingerprinting."""
        return asdict(self)
