"""A cycle-level out-of-order core with pluggable optimizations.

This is the repo's stand-in for the paper's gem5 substrate (Section V-A1).
It models exactly the mechanisms the paper's proofs-of-concept depend on:

* register renaming against a finite physical register file (so that
  register-file compression has something to relieve),
* a unified reservation-station window with per-cycle ALU / load / store
  ports and non-pipelined multiply/divide units (so that computation
  simplification, operand packing and computation reuse change timing),
* a load/store queue with store-to-load forwarding, conservative memory
  disambiguation and — critically — **in-order store dequeue gated on the
  line being present in L1** (Section V-A1; the amplification gadget of
  Figure 5 is built on this),
* branch prediction with squash/recovery, reused by value prediction,
* a cycle counter instruction (``rdcycle``) as the receiver's timer.

Architectural results are differentially tested against the golden-model
interpreter: optimizations may change *when*, never *what*.
"""

from collections import deque

from repro.isa.bits import mask
from repro.isa.opcodes import (
    Op, is_alu, is_branch, is_div, is_load, is_mul, is_store, reads_rs1,
    reads_rs2, writes_register,
)
from repro.isa.semantics import alu_result, branch_taken, effective_address
from repro.pipeline.branch_predictor import BranchPredictor
from repro.pipeline.config import CPUConfig
from repro.pipeline.dyninst import (
    DynInst, InstState, LQEntry, SilentState, SQEntry,
)
from repro.stats import NULL_STATS
from repro.trace.buffer import NULL_TRACE

NUM_ARCH_REGS = 32
SILENT_DEQUEUE_WIDTH = 4  # consecutive silent stores retired per cycle


class SimulationError(Exception):
    """Raised when a simulation exceeds its cycle budget or deadlocks."""


class CPUStats:
    """Counters exposed after a run."""

    def __init__(self):
        self.cycles = 0
        self.retired = 0
        self.dispatched = 0
        self.issued = 0
        self.branch_squashes = 0
        self.vp_squashes = 0
        self.squashed_instructions = 0
        self.stores_performed = 0
        self.silent_stores = 0
        self.loads_forwarded = 0
        self.loads_from_memory = 0
        self.dispatch_stalls = {
            "rob": 0, "rs": 0, "sq": 0, "lq": 0, "preg": 0, "fence": 0,
        }
        self.packed_alu_pairs = 0
        self.reuse_hits = 0

    def as_dict(self):
        data = {k: v for k, v in vars(self).items()
                if not k.startswith("_")}
        return data

    @property
    def ipc(self):
        return self.retired / self.cycles if self.cycles else 0.0


class CPU:
    """The out-of-order core.

    Parameters
    ----------
    program:
        An assembled :class:`repro.isa.Program`.
    hierarchy:
        A :class:`repro.memory.MemoryHierarchy`; its backing
        :class:`FlatMemory` is the architectural data memory.
    config:
        A :class:`CPUConfig`; defaults model the paper's Baseline.
    plugins:
        Iterable of :class:`repro.pipeline.plugins.OptimizationPlugin`.
    metrics:
        A :class:`repro.stats.SimStats` shared with the hierarchy and
        plug-ins; defaults to the disabled :data:`~repro.stats.NULL_STATS`
        (per-cycle recording is skipped behind one ``enabled`` check).
    trace:
        A :class:`repro.trace.TraceBuffer` receiving cycle-accurate
        pipeline events, shared with the hierarchy and plug-ins;
        defaults to the disabled :data:`~repro.trace.NULL_TRACE`
        (emission sites are skipped behind one ``enabled`` check).
    """

    def __init__(self, program, hierarchy, config=None, plugins=(),
                 metrics=None, trace=None):
        self.program = program
        self.hierarchy = hierarchy
        self.memory = hierarchy.memory
        self.config = config if config is not None else CPUConfig()
        self.plugins = list(plugins)
        self.stats = CPUStats()
        self.metrics = metrics if metrics is not None else NULL_STATS
        self.trace = NULL_TRACE
        self.install_trace(trace if trace is not None else NULL_TRACE)
        self.branch_predictor = BranchPredictor(self.config.use_branch_predictor)

        # Physical register file.  Plug-ins may carve extra hidden pregs
        # via allocate_plugin_pool (register-file compression headroom).
        total_pregs = self.config.num_phys_regs
        self.prf_value = [0] * total_pregs
        self.prf_ready = [True] * total_pregs
        self.rename_map = list(range(NUM_ARCH_REGS))
        self.free_list = deque(range(NUM_ARCH_REGS, self.config.num_phys_regs))
        self.arch_version = [0] * NUM_ARCH_REGS

        # Windows and queues.
        self.rob = deque()
        self.rs = []
        self.load_queue = []
        self.store_queue = []
        self.fetch_buffer = deque()
        self.fetch_pc = 0
        self.fetching_halted = False

        # Execution resources.  ``ports`` is per-cycle issue bandwidth;
        # an SMT wrapper may replace it (and the busy-until lists) with
        # objects shared between sibling threads.
        self.mul_busy_until = [0] * self.config.num_mul_units
        self.div_busy_until = [0] * self.config.num_div_units
        self.ports = {"alu": 0, "load": 0, "store": 0}
        self._owns_ports = True

        # Event queue: cycle -> list of zero-arg callables.
        self._events = {}
        self.cycle = 0
        self.halted = False
        self._seq = 0
        self._squash_req = None  # (seq, redirect_pc)

        for plugin in self.plugins:
            plugin.attach(self)

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------

    def install_trace(self, buffer):
        """Adopt ``buffer`` as this core's event sink.

        Clocks the buffer off this core's cycle counter and shares it
        with the memory hierarchy when enabled (a disabled buffer never
        displaces a hierarchy's existing one, so persistent-hierarchy
        callers keep their own tracing).
        """
        self.trace = buffer
        buffer.set_clock(lambda: self.cycle)
        if buffer.enabled:
            self.hierarchy.trace = buffer

    # ------------------------------------------------------------------
    # plug-in support
    # ------------------------------------------------------------------

    def allocate_plugin_pool(self, size):
        """Extend the PRF with ``size`` hidden registers for a plug-in.

        Returns the list of new physical-register indices.  These never
        enter the core's own free list; the plug-in hands them out via
        ``provide_phys_reg`` and takes them back via ``reclaim_phys_reg``.
        """
        start = len(self.prf_value)
        self.prf_value.extend([0] * size)
        self.prf_ready.extend([True] * size)
        return list(range(start, start + size))

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------

    def schedule(self, delay, fn):
        """Run ``fn`` at ``self.cycle + delay`` (delay >= 1)."""
        when = self.cycle + max(1, delay)
        self._events.setdefault(when, []).append(fn)

    def _fire_events(self):
        for fn in self._events.pop(self.cycle, ()):  # insertion order
            fn()

    def request_squash(self, seq, redirect_pc):
        """Squash everything younger than ``seq``; refetch at ``redirect_pc``."""
        if self._squash_req is None or seq < self._squash_req[0]:
            self._squash_req = (seq, redirect_pc)

    # ------------------------------------------------------------------
    # top-level run loop
    # ------------------------------------------------------------------

    def run(self, max_cycles=None):
        """Run to HALT (or end of program); returns :class:`CPUStats`."""
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        while self.advance(limit):
            pass
        self.stats.cycles = self.cycle
        return self.stats

    def advance(self, limit):
        """One cooperative scheduling quantum; True while still running.

        The unit the lockstep execution backend interleaves: a core that
        has halted returns False immediately, one at ``limit`` raises
        exactly as :meth:`run` would, anything else ticks one cycle.
        ``run`` is a plain loop over this, so driving a core through
        ``advance`` is bitwise identical to ``run``.
        """
        if self.halted:
            return False
        if self.cycle >= limit:
            raise SimulationError(
                f"exceeded {limit} cycles without halting")
        self.step()
        return not self.halted

    def step(self):
        """Advance one cycle."""
        self.cycle += 1
        if self.metrics.enabled:
            self._record_cycle_metrics()
        if self._owns_ports:
            self.refill_ports()
        self._fire_events()
        self._apply_squash()
        self._commit()
        if self.halted:
            self.stats.cycles = self.cycle
            return
        self._lsq_step()
        self._issue()
        self._dispatch()
        self._fetch()
        self._plugins_end_of_cycle()
        # End-of-program fallback for programs without an explicit HALT.
        if (not self.rob and not self.fetch_buffer and not self.store_queue
                and (self.fetching_halted or self.fetch_pc >= len(self.program))
                and not self.fetch_buffer):
            if not any(self._events.values()):
                self.halted = True
                self.stats.cycles = self.cycle

    def _record_cycle_metrics(self):
        """Per-cycle structure occupancy (enabled-mode only).

        Occupancy integrals are counters (summed across merged trials)
        paired with the ``pipeline.cycles`` counter, so a merged
        record's average occupancy is ``integral / cycles``; high-water
        marks merge by max.
        """
        metrics = self.metrics
        rob = len(self.rob)
        rs = len(self.rs)
        lq = len(self.load_queue)
        sq = len(self.store_queue)
        metrics.inc("pipeline.cycles")
        metrics.inc("pipeline.rob.occupancy_integral", rob)
        metrics.inc("pipeline.rs.occupancy_integral", rs)
        metrics.inc("pipeline.lq.occupancy_integral", lq)
        metrics.inc("pipeline.sq.occupancy_integral", sq)
        metrics.peak("pipeline.rob.high_water", rob)
        metrics.peak("pipeline.rs.high_water", rs)
        metrics.peak("pipeline.lq.high_water", lq)
        metrics.peak("pipeline.sq.high_water", sq)
        if sq and self.store_queue[0].committed:
            metrics.inc("pipeline.sq.head_committed_cycles")

    # ------------------------------------------------------------------
    # squash / recovery
    # ------------------------------------------------------------------

    def _apply_squash(self):
        if self._squash_req is None:
            return
        seq, redirect = self._squash_req
        self._squash_req = None
        if self.metrics.enabled:
            self.metrics.inc("pipeline.flushes")
        trace_on = self.trace.enabled
        if trace_on:
            self.trace.emit("inst", "flush", cycle=self.cycle,
                            info=f"redirect={redirect}")
        squashed_before = self.stats.squashed_instructions
        while self.rob and self.rob[-1].seq > seq:
            dyn = self.rob.pop()
            dyn.squashed = True
            self.stats.squashed_instructions += 1
            if trace_on:
                self.trace.emit("inst", "squash", cycle=self.cycle,
                                seq=dyn.seq, pc=dyn.pc)
            if dyn.pdst is not None:
                self.rename_map[dyn.inst.rd] = dyn.old_pdst
                self._free_preg(dyn.pdst)
        if self.metrics.enabled:
            self.metrics.inc("pipeline.squashed_instructions",
                             self.stats.squashed_instructions
                             - squashed_before)
        self.rs = [d for d in self.rs if not d.squashed]
        self.load_queue = [e for e in self.load_queue if not e.dyn.squashed]
        self.store_queue = [e for e in self.store_queue
                            if not e.dyn.squashed]
        self.fetch_buffer.clear()
        self.fetch_pc = redirect
        self.fetching_halted = False

    def _free_preg(self, preg):
        for plugin in self.plugins:
            if plugin.reclaim_phys_reg(preg):
                return
        self.free_list.append(preg)

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self):
        committed = 0
        while self.rob and committed < self.config.commit_width:
            dyn = self.rob[0]
            if dyn.state is not InstState.DONE:
                break
            if dyn.inst.op is Op.HALT and self.store_queue:
                break  # drain outstanding stores before halting
            self.rob.popleft()
            dyn.state = InstState.COMMITTED
            self.stats.retired += 1
            committed += 1
            if self.trace.enabled:
                self.trace.emit("inst", "retire", cycle=self.cycle,
                                seq=dyn.seq, pc=dyn.pc)
            for plugin in self.plugins:
                plugin.on_commit(dyn)
            if dyn.pdst is not None and dyn.old_pdst is not None:
                self._free_preg(dyn.old_pdst)
            if dyn.inst.is_store:
                for entry in self.store_queue:
                    if entry.dyn is dyn:
                        entry.committed = True
                        entry.committed_cycle = self.cycle
                        break
            elif dyn.inst.is_load:
                for index, entry in enumerate(self.load_queue):
                    if entry.dyn is dyn:
                        del self.load_queue[index]
                        # Plug-ins (e.g. the IMP) train on the retired
                        # load stream: program order, no wrong paths.
                        # Forwarded loads never reached the memory
                        # system, so they stay invisible.
                        if not entry.forwarded:
                            for plugin in self.plugins:
                                plugin.on_load_response(
                                    dyn, entry.addr, dyn.result)
                        break
            if dyn.inst.op is Op.HALT:
                self.halted = True
                return

    # ------------------------------------------------------------------
    # load/store queue upkeep and store dequeue
    # ------------------------------------------------------------------

    def _lsq_step(self):
        lat = self.hierarchy.latencies
        for entry in self.store_queue:
            dyn = entry.dyn
            if not entry.data_ready:
                preg = dyn.src_pregs[1]
                if preg is None:
                    entry.data = 0
                    entry.data_ready = True
                elif self.prf_ready[preg]:
                    entry.data = self.prf_value[preg] & (
                        (1 << (8 * entry.width)) - 1)
                    entry.data_ready = True
            if (entry.addr_ready and entry.data_ready
                    and dyn.state is not InstState.DONE):
                dyn.state = InstState.DONE
                dyn.done_cycle = self.cycle
            if (entry.ss_load_returned and entry.data_ready
                    and entry.silent is SilentState.UNKNOWN
                    and not entry.performed):
                if entry.ss_load_value == entry.data:
                    entry.silent = SilentState.SILENT
                else:
                    entry.silent = SilentState.NONSILENT

        # In-order store dequeue.  Consecutive silent stores dequeue in the
        # same cycle (Section V-A1); at most one store performs to memory.
        silent_budget = SILENT_DEQUEUE_WIDTH
        dequeue_delay = self.config.store_dequeue_delay
        metrics_on = self.metrics.enabled
        trace_on = self.trace.enabled
        while self.store_queue and self.store_queue[0].committed:
            head = self.store_queue[0]
            if self.cycle < head.committed_cycle + dequeue_delay:
                break
            if head.silent is SilentState.SILENT:
                if silent_budget <= 0:
                    break
                silent_budget -= 1
                head.performed = True
                head.dequeue_cycle = self.cycle
                self.stats.silent_stores += 1
                if metrics_on:
                    self.metrics.inc("pipeline.sq.silent_dequeues")
                if trace_on:
                    self.trace.emit("sq", "silent_dequeue",
                                    cycle=self.cycle, seq=head.dyn.seq,
                                    pc=head.dyn.pc, addr=head.addr)
                self.store_queue.pop(0)
                for plugin in self.plugins:
                    plugin.on_store_performed(head)
                continue
            # Non-silent (or not-yet-decided) store: needs its line in L1.
            # Every cycle a committed head store spends waiting for its
            # line is head-of-line blocking: nothing younger can dequeue
            # behind it.  This counter is what attributes the Figure 5
            # amplification to the store queue.
            if head.fill_requested:
                if self.cycle < head.fill_ready_cycle:
                    if metrics_on:
                        self.metrics.inc(
                            "pipeline.sq.head_of_line_stall_cycles")
                    if trace_on:
                        self.trace.emit("sq", "hol_stall",
                                        cycle=self.cycle,
                                        seq=head.dyn.seq,
                                        pc=head.dyn.pc, addr=head.addr)
                    break
            elif not self.hierarchy.line_in_l1(head.addr):
                head.fill_requested = True
                fill_latency = self.hierarchy.request_line_for_store(head.addr)
                head.fill_ready_cycle = self.cycle + fill_latency
                if metrics_on:
                    self.metrics.inc("pipeline.sq.store_fills")
                    self.metrics.inc(
                        "pipeline.sq.head_of_line_stall_cycles")
                    self.metrics.observe("pipeline.sq.store_fill_latency",
                                         fill_latency, bin_width=8)
                if trace_on:
                    self.trace.emit("sq", "fill_request",
                                    cycle=self.cycle, seq=head.dyn.seq,
                                    pc=head.dyn.pc, addr=head.addr,
                                    info=f"latency={fill_latency}")
                    self.trace.emit("sq", "hol_stall", cycle=self.cycle,
                                    seq=head.dyn.seq, pc=head.dyn.pc,
                                    addr=head.addr)
                break
            if head.silent is SilentState.UNKNOWN:
                head.silent = SilentState.NO_CANDIDATE
            self.hierarchy.write(head.addr, head.data, head.width)
            # Store-store snoop: this write stales any SS-Load value a
            # younger overlapping store already captured — cancel its
            # candidacy (it will perform normally, always correct).
            for other in self.store_queue[1:]:
                if not other.overlaps(head.addr, head.width):
                    continue
                if (other.ss_load_returned
                        or other.silent in (SilentState.SILENT,
                                            SilentState.NONSILENT)):
                    other.silent = SilentState.NO_CANDIDATE
                    other.ss_load_returned = False
            head.performed = True
            head.dequeue_cycle = self.cycle + lat.store_perform
            self.stats.stores_performed += 1
            if trace_on:
                self.trace.emit("sq", "perform", cycle=self.cycle,
                                seq=head.dyn.seq, pc=head.dyn.pc,
                                addr=head.addr, info=head.silent.value)
            self.store_queue.pop(0)
            for plugin in self.plugins:
                plugin.on_store_performed(head)
            break  # one memory write port per cycle

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def _sources_ready(self, dyn):
        op = dyn.inst.op
        needed = []
        if reads_rs1(op):
            needed.append(0)
        if reads_rs2(op) and not is_store(op):
            needed.append(1)
        for index in needed:
            preg = dyn.src_pregs[index]
            if preg is not None and not self.prf_ready[preg]:
                return False
        for index in needed:
            preg = dyn.src_pregs[index]
            dyn.src_values[index] = (
                self.prf_value[preg] if preg is not None else 0)
        return True

    def refill_ports(self):
        """Reset per-cycle issue bandwidth (called once per cycle by
        the owner of the port state — this core, or an SMT wrapper)."""
        self.ports["alu"] = self.config.num_alu_ports
        self.ports["load"] = self.config.num_load_ports
        self.ports["store"] = self.config.num_store_ports
        # ALU ops issued this cycle (across SMT siblings when shared):
        # the candidates for operand packing, and the already-packed
        # bookkeeping.
        self.ports["alu_issued"] = []
        self.ports["packed"] = set()

    def _issue(self):
        cfg = self.config
        ports = self.ports
        issued = 0
        issued_alu_ops = ports["alu_issued"]
        packed_partners = ports["packed"]
        taken = []

        for dyn in self.rs:
            if issued >= cfg.issue_width:
                break
            if not self._sources_ready(dyn):
                continue
            op = dyn.inst.op
            if is_load(op):
                if ports["load"] <= 0:
                    continue
                if not self._try_issue_load(dyn):
                    continue
                ports["load"] -= 1
            elif is_store(op):
                if ports["store"] <= 0:
                    continue
                ports["store"] -= 1
                self._issue_store_agen(dyn)
            elif is_mul(op):
                if not self._issue_arith(dyn, cfg.latency_mul,
                                         self.mul_busy_until):
                    continue
            elif is_div(op):
                if not self._issue_arith(dyn, cfg.latency_div,
                                         self.div_busy_until):
                    continue
            else:  # ALU-class: simple ops, branches, LI, RDCYCLE
                if ports["alu"] > 0:
                    ports["alu"] -= 1
                    self._issue_alu(dyn)
                    issued_alu_ops.append(dyn)
                else:
                    partner = self._find_pack_partner(
                        dyn, issued_alu_ops, packed_partners)
                    if partner is None:
                        continue
                    packed_partners.add(id(partner))
                    self.stats.packed_alu_pairs += 1
                    self._issue_alu(dyn)
                    issued_alu_ops.append(dyn)
            dyn.state = InstState.ISSUED
            dyn.issue_cycle = self.cycle
            issued += 1
            self.stats.issued += 1
            if self.trace.enabled:
                self.trace.emit("inst", "issue", cycle=self.cycle,
                                seq=dyn.seq, pc=dyn.pc)
            taken.append(dyn)

        if taken:
            taken_ids = {id(d) for d in taken}
            self.rs = [d for d in self.rs if id(d) not in taken_ids]

    def _find_pack_partner(self, dyn, issued_alu_ops, packed_partners):
        """Operand packing: find an already-issued ALU op to share a slot."""
        if not self.plugins or not is_alu(dyn.inst.op):
            return None
        for partner in issued_alu_ops:
            if id(partner) in packed_partners:
                continue
            if not is_alu(partner.inst.op):
                continue
            for plugin in self.plugins:
                if plugin.pack_pair(partner, dyn):
                    return partner
        return None

    def _issue_arith(self, dyn, latency, busy_until):
        """Issue a multiply/divide; returns False when all units are busy."""
        hit = False
        for plugin in self.plugins:
            if plugin.lookup_reuse(dyn):
                hit = True
                break
        value = self._compute_result(dyn)
        if hit:
            dyn.reused = True
            self.stats.reuse_hits += 1
            self.schedule(1, lambda d=dyn, v=value: self._writeback(d, v))
            return True
        unit_index = None
        for index, until in enumerate(busy_until):
            if until <= self.cycle:
                unit_index = index
                break
        if unit_index is None:
            return False
        for plugin in self.plugins:
            latency = plugin.execute_latency(dyn, latency)
        busy_until[unit_index] = self.cycle + latency
        self.schedule(latency, lambda d=dyn, v=value: self._writeback(d, v))
        return True

    def _issue_alu(self, dyn):
        op = dyn.inst.op
        latency = self.config.latency_alu
        for plugin in self.plugins:
            latency = plugin.execute_latency(dyn, latency)
        if is_branch(op):
            self.schedule(latency, lambda d=dyn: self._resolve_branch(d))
            return
        if op is Op.RDCYCLE:
            value = mask(self.cycle)
        else:
            hit = False
            for plugin in self.plugins:
                if plugin.lookup_reuse(dyn):
                    hit = True
                    break
            if hit:
                dyn.reused = True
                self.stats.reuse_hits += 1
                latency = 1
            value = self._compute_result(dyn)
        self.schedule(latency, lambda d=dyn, v=value: self._writeback(d, v))

    def _compute_result(self, dyn):
        return alu_result(dyn.inst.op, dyn.src_values[0], dyn.src_values[1],
                          dyn.inst.imm)

    def _issue_store_agen(self, dyn):
        addr = effective_address(dyn.src_values[0], dyn.inst.imm)
        self.schedule(self.config.latency_agen,
                      lambda d=dyn, a=addr: self._store_addr_resolved(d, a))

    def _store_addr_resolved(self, dyn, addr):
        if dyn.squashed:
            return
        for entry in self.store_queue:
            if entry.dyn is dyn:
                entry.addr = addr
                entry.addr_ready = True
                if self.trace.enabled:
                    self.trace.emit("sq", "address_resolved",
                                    cycle=self.cycle, seq=dyn.seq,
                                    pc=dyn.pc, addr=addr)
                for plugin in self.plugins:
                    plugin.on_store_address_resolved(entry)
                return

    def _try_issue_load(self, dyn):
        """Disambiguate and launch a load; False if it must wait."""
        addr = effective_address(dyn.src_values[0], dyn.inst.imm)
        width = dyn.inst.width
        forward_entry = None
        for entry in reversed(self.store_queue):
            if entry.dyn.seq > dyn.seq:
                continue
            if entry.performed:
                continue
            if not entry.addr_ready:
                return False  # unknown older store address: wait
            if entry.overlaps(addr, width):
                if (entry.addr == addr and entry.width >= width
                        and entry.data_ready):
                    forward_entry = entry
                    break
                return False  # partial overlap or data not ready: wait
        lq_entry = None
        for candidate in self.load_queue:
            if candidate.dyn is dyn:
                lq_entry = candidate
                break
        if lq_entry is not None:
            lq_entry.addr = addr
        if forward_entry is not None:
            value = forward_entry.data & ((1 << (8 * width)) - 1)
            if lq_entry is not None:
                lq_entry.forwarded = True
            self.stats.loads_forwarded += 1
            self.schedule(self.config.latency_forward,
                          lambda d=dyn, v=value: self._writeback(d, v))
            return True
        value, mem_latency, _level = self.hierarchy.read(addr, width)
        self.stats.loads_from_memory += 1
        total = self.config.latency_agen + mem_latency
        self.schedule(total, lambda d=dyn, v=value, a=addr:
                      self._load_response(d, a, v))
        return True

    def _load_response(self, dyn, addr, value):
        del addr
        if dyn.squashed:
            return
        self._writeback(dyn, value)

    # ------------------------------------------------------------------
    # writeback
    # ------------------------------------------------------------------

    def _writeback(self, dyn, value):
        if dyn.squashed:
            return
        dyn.result = value
        dyn.state = InstState.DONE
        dyn.done_cycle = self.cycle
        if dyn.pdst is not None:
            self.prf_value[dyn.pdst] = value
            self.prf_ready[dyn.pdst] = True
        if self.trace.enabled:
            self.trace.emit("inst", "complete", cycle=self.cycle,
                            seq=dyn.seq, pc=dyn.pc)
        for plugin in self.plugins:
            plugin.on_result(dyn, value)
        if dyn.vp_predicted and value != dyn.vp_value:
            self.stats.vp_squashes += 1
            if self.trace.enabled:
                self.trace.emit("inst", "squash_request",
                                cycle=self.cycle, seq=dyn.seq,
                                pc=dyn.pc, info="vp")
            self.request_squash(dyn.seq, dyn.pc + 1)

    def _resolve_branch(self, dyn):
        if dyn.squashed:
            return
        taken = branch_taken(dyn.inst.op, dyn.src_values[0],
                             dyn.src_values[1])
        target = dyn.inst.target if taken else dyn.pc + 1
        predicted_target = dyn.pred_target if dyn.pred_taken else dyn.pc + 1
        mispredicted = (taken != dyn.pred_taken or
                        (taken and predicted_target != dyn.inst.target))
        self.branch_predictor.update(dyn.pc, taken, dyn.inst.target,
                                     mispredicted)
        dyn.result = 1 if taken else 0
        dyn.state = InstState.DONE
        dyn.done_cycle = self.cycle
        if self.trace.enabled:
            self.trace.emit("inst", "complete", cycle=self.cycle,
                            seq=dyn.seq, pc=dyn.pc,
                            info="taken" if taken else "not-taken")
        if mispredicted:
            self.stats.branch_squashes += 1
            if self.trace.enabled:
                self.trace.emit("inst", "squash_request",
                                cycle=self.cycle, seq=dyn.seq,
                                pc=dyn.pc, info="branch")
            self.request_squash(dyn.seq, target)

    # ------------------------------------------------------------------
    # dispatch / rename
    # ------------------------------------------------------------------

    def _dispatch_stall(self, kind):
        self.stats.dispatch_stalls[kind] += 1
        if self.metrics.enabled:
            self.metrics.inc("pipeline.dispatch_stall." + kind)

    def _dispatch(self):
        cfg = self.config
        count = 0
        while self.fetch_buffer and count < cfg.dispatch_width:
            inst, pred_taken, pred_target = self.fetch_buffer[0]
            op = inst.op
            if len(self.rob) >= cfg.rob_size:
                self._dispatch_stall("rob")
                break
            if op is Op.FENCE:
                if self.rob or self.store_queue:
                    self._dispatch_stall("fence")
                    break
            needs_rs = op not in (Op.NOP, Op.HALT, Op.FENCE, Op.JMP)
            if needs_rs and len(self.rs) >= cfg.rs_size:
                self._dispatch_stall("rs")
                break
            if is_load(op) and len(self.load_queue) >= cfg.load_queue_size:
                self._dispatch_stall("lq")
                break
            if is_store(op) and len(self.store_queue) >= cfg.store_queue_size:
                self._dispatch_stall("sq")
                break
            wants_dest = writes_register(op) and inst.rd != 0
            pdst = None
            if wants_dest:
                if self.free_list:
                    pdst = self.free_list.popleft()
                else:
                    for plugin in self.plugins:
                        pdst = plugin.provide_phys_reg()
                        if pdst is not None:
                            break
                if pdst is None:
                    self._dispatch_stall("preg")
                    break
            self.fetch_buffer.popleft()
            dyn = DynInst(self._seq, inst)
            self._seq += 1
            dyn.pred_taken = pred_taken
            dyn.pred_target = pred_target
            if reads_rs1(op) and inst.rs1 != 0:
                dyn.src_pregs[0] = self.rename_map[inst.rs1]
            if reads_rs2(op) and inst.rs2 != 0:
                dyn.src_pregs[1] = self.rename_map[inst.rs2]
            if wants_dest:
                dyn.pdst = pdst
                dyn.old_pdst = self.rename_map[inst.rd]
                self.rename_map[inst.rd] = pdst
                self.prf_ready[pdst] = False
                self.arch_version[inst.rd] += 1
            if self.trace.enabled:
                self.trace.emit("inst", "dispatch", cycle=self.cycle,
                                seq=dyn.seq, pc=dyn.pc, info=str(inst))
            self.rob.append(dyn)
            if needs_rs:
                self.rs.append(dyn)
            else:
                dyn.state = InstState.DONE
                dyn.done_cycle = self.cycle
            if is_load(op):
                self.load_queue.append(LQEntry(dyn))
            if is_store(op):
                self.store_queue.append(SQEntry(dyn))
            for plugin in self.plugins:
                plugin.on_dispatch(dyn)
            self.stats.dispatched += 1
            count += 1

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch(self):
        if self.fetching_halted:
            return
        cfg = self.config
        fetched = 0
        capacity = 2 * cfg.fetch_width
        trace_on = self.trace.enabled
        while fetched < cfg.fetch_width and len(self.fetch_buffer) < capacity:
            if not 0 <= self.fetch_pc < len(self.program):
                self.fetching_halted = True
                break
            inst = self.program[self.fetch_pc]
            op = inst.op
            if trace_on:
                self.trace.emit("fetch", "fetch", cycle=self.cycle,
                                pc=self.fetch_pc)
            if op is Op.HALT:
                self.fetch_buffer.append((inst, False, None))
                self.fetching_halted = True
                break
            if op is Op.JMP:
                self.fetch_buffer.append((inst, True, inst.target))
                self.fetch_pc = inst.target
            elif is_branch(op):
                taken, target = self.branch_predictor.predict(self.fetch_pc)
                self.fetch_buffer.append((inst, taken, target))
                self.fetch_pc = target if taken else self.fetch_pc + 1
            else:
                self.fetch_buffer.append((inst, False, None))
                self.fetch_pc += 1
            fetched += 1

    # ------------------------------------------------------------------
    # plug-ins
    # ------------------------------------------------------------------

    def _plugins_end_of_cycle(self):
        free_ports = max(0, self.ports["load"])
        for plugin in self.plugins:
            used = plugin.end_of_cycle(free_ports)
            used = used or 0
            self.ports["load"] = max(0, self.ports["load"] - used)
            free_ports = max(0, free_ports - used)

    # ------------------------------------------------------------------
    # inspection helpers (for tests and attack tooling)
    # ------------------------------------------------------------------

    def arch_reg(self, index):
        """Current architectural value of ``x<index>``."""
        if index == 0:
            return 0
        return self.prf_value[self.rename_map[index]]


def run_on_cpu(program, hierarchy, config=None, plugins=(),
               regs=None, max_cycles=None):
    """One-shot helper: build a CPU, preload registers, run, return it."""
    cpu = CPU(program, hierarchy, config=config, plugins=plugins)
    if regs:
        for index, value in regs.items():
            cpu.prf_value[cpu.rename_map[index]] = mask(value)
    cpu.run(max_cycles=max_cycles)
    return cpu
