"""Pipeline event tracing.

A plug-in that records, per dynamic instruction, the cycle of every
lifecycle event (dispatch, issue, completion, commit) and, for stores,
the store-queue events the silent-store analysis cares about (address
resolution, SS-Load issue/return, dequeue, silence outcome).  The
renderer produces the event timelines of the paper's Figure 4.
"""

from dataclasses import dataclass, field

from repro.pipeline.dyninst import SilentState
from repro.pipeline.plugins import OptimizationPlugin


@dataclass
class InstructionTrace:
    seq: int
    pc: int
    text: str
    dispatch_cycle: int = None
    issue_cycle: int = None
    complete_cycle: int = None
    commit_cycle: int = None
    squashed: bool = False
    store_events: dict = field(default_factory=dict)

    def event_pairs(self):
        pairs = [("dispatch", self.dispatch_cycle),
                 ("issue", self.issue_cycle),
                 ("complete", self.complete_cycle),
                 ("commit", self.commit_cycle)]
        pairs.extend(sorted(self.store_events.items(),
                            key=lambda item: (item[1] is None, item[1])))
        return [(name, cycle) for name, cycle in pairs
                if cycle is not None]


class PipelineTracer(OptimizationPlugin):
    """Passive observer plug-in: records timing, changes nothing."""

    name = "pipeline-tracer"

    def __init__(self, max_records=4096):
        super().__init__()
        self.max_records = max_records
        self.records = {}

    def reset(self):
        self.records.clear()

    def _record(self, dyn):
        record = self.records.get(dyn.seq)
        if record is None:
            if len(self.records) >= self.max_records:
                return None
            record = InstructionTrace(seq=dyn.seq, pc=dyn.pc,
                                      text=str(dyn.inst))
            self.records[dyn.seq] = record
        return record

    def on_dispatch(self, dyn):
        record = self._record(dyn)
        if record is not None:
            record.dispatch_cycle = self.cpu.cycle

    def on_result(self, dyn, value):
        record = self._record(dyn)
        if record is not None:
            record.issue_cycle = dyn.issue_cycle
            record.complete_cycle = self.cpu.cycle
            record.squashed = dyn.squashed

    def on_store_address_resolved(self, entry):
        record = self._record(entry.dyn)
        if record is not None:
            record.store_events["address_resolves"] = self.cpu.cycle

    def on_store_performed(self, entry):
        record = self._record(entry.dyn)
        if record is None:
            return
        record.issue_cycle = entry.dyn.issue_cycle
        record.store_events["dequeue"] = self.cpu.cycle
        if entry.silent is SilentState.SILENT:
            record.store_events["silent_dequeue"] = self.cpu.cycle
        elif entry.silent is SilentState.NONSILENT:
            record.store_events["performed_nonsilent"] = self.cpu.cycle
        else:
            record.store_events["performed_no_candidate"] = self.cpu.cycle
        if entry.ss_load_issued:
            record.store_events.setdefault("ss_load_issued", None)
        if entry.ss_load_returned:
            record.store_events.setdefault("ss_load_returned", None)

    def on_commit(self, dyn):
        record = self._record(dyn)
        if record is not None:
            record.commit_cycle = self.cpu.cycle

    # -- rendering -------------------------------------------------------

    def timeline(self, seq):
        """Figure-4-style one-line timeline for one instruction."""
        record = self.records.get(seq)
        if record is None:
            return f"#{seq}: (not traced)"
        events = " -> ".join(f"{name}@{cycle}"
                             for name, cycle in record.event_pairs())
        flag = " [SQUASHED]" if record.squashed else ""
        return f"#{record.seq} {record.text}: {events}{flag}"

    def store_timelines(self):
        """Timelines for every traced store, oldest first."""
        lines = []
        for seq in sorted(self.records):
            record = self.records[seq]
            if record.store_events:
                lines.append(self.timeline(seq))
        return lines
