"""Pipeline event tracing: Figure-4-style instruction timelines.

Since the :mod:`repro.trace` subsystem landed, the core itself emits
every lifecycle and store-queue event into a shared
:class:`~repro.trace.TraceBuffer`.  :class:`PipelineTracer` is now a
thin *consumer* of that stream — there is one source of truth for
pipeline events — that folds events back into per-instruction
:class:`InstructionTrace` records and renders the event timelines of
the paper's Figure 4.

When the attached core already has an enabled trace buffer (e.g. the
engine built one from ``SimSpec.trace``) the tracer piggybacks on it;
otherwise it installs a private buffer restricted to the pipeline
categories (``inst``/``sq``).  Records are rebuilt lazily from the
event stream, so reading ``tracer.records`` mid-run reflects whatever
has been emitted so far.

Record truncation is *visible*: distinct instructions beyond
``max_records`` are dropped from the rebuilt mapping, and the drop
count is surfaced through ``repro.stats`` under
``trace.tracer.records_dropped`` (a peak gauge, so the lazily repeated
rebuilds never double-count).
"""

from dataclasses import dataclass, field

from repro.pipeline.plugins import FF_PURE, OptimizationPlugin
from repro.trace.buffer import PIPELINE_CATEGORIES, TraceBuffer, events_of


@dataclass
class InstructionTrace:
    seq: int
    pc: int
    text: str
    dispatch_cycle: int = None
    issue_cycle: int = None
    complete_cycle: int = None
    commit_cycle: int = None
    squashed: bool = False
    store_events: dict = field(default_factory=dict)

    def event_pairs(self):
        pairs = [("dispatch", self.dispatch_cycle),
                 ("issue", self.issue_cycle),
                 ("complete", self.complete_cycle),
                 ("commit", self.commit_cycle)]
        pairs.extend(sorted(self.store_events.items(),
                            key=lambda item: (item[1] is None, item[1])))
        return [(name, cycle) for name, cycle in pairs
                if cycle is not None]


#: inst-category event name -> InstructionTrace attribute.
_LIFECYCLE_FIELDS = {
    "dispatch": "dispatch_cycle",
    "issue": "issue_cycle",
    "complete": "complete_cycle",
    "retire": "commit_cycle",
}


class PipelineTracer(OptimizationPlugin):
    """Passive observer plug-in: records timing, changes nothing."""

    name = "pipeline-tracer"

    #: Lazy consumer of the shared event stream; never acts on a cycle.
    ff_policy = FF_PURE

    def __init__(self, max_records=4096):
        super().__init__()
        self.max_records = max_records
        self.buffer = None
        self._owns_buffer = False
        self._records = {}
        self._consumed = None  # (emitted, dropped) the cache reflects

    def attach(self, cpu):
        super().attach(cpu)
        if cpu.trace.enabled:
            # Engine-installed buffer: consume the shared stream.
            self.buffer = cpu.trace
            self._owns_buffer = False
        else:
            self.buffer = TraceBuffer(
                capacity=max(1024, 8 * self.max_records),
                categories=PIPELINE_CATEGORIES,
                metrics=cpu.metrics)
            self._owns_buffer = True
            cpu.install_trace(self.buffer)
        self._consumed = None

    def reset(self):
        if self.buffer is not None and self._owns_buffer:
            self.buffer.clear()
        self._records = {}
        self._consumed = None

    # -- event-stream folding ---------------------------------------------

    @property
    def records(self):
        """Per-instruction records, rebuilt lazily from the stream."""
        buffer = self.buffer
        if buffer is None:
            return self._records
        key = (buffer.emitted, buffer.dropped)
        if key != self._consumed:
            self._records = self._rebuild(events_of(buffer))
            self._consumed = key
        return self._records

    def _rebuild(self, events):
        records = {}
        overflow = set()
        for cycle, category, name, seq, pc, _addr, info in events:
            if seq < 0 or seq in overflow:
                continue
            record = records.get(seq)
            if record is None:
                if len(records) >= self.max_records:
                    overflow.add(seq)
                    continue
                text = info if category == "inst" and name == "dispatch" \
                    else "?"
                record = InstructionTrace(seq=seq, pc=pc, text=text)
                records[seq] = record
            if category == "inst":
                fieldname = _LIFECYCLE_FIELDS.get(name)
                if fieldname is not None:
                    setattr(record, fieldname, cycle)
                    if name == "dispatch":
                        record.text = info
                elif name == "squash":
                    record.squashed = True
            elif category == "sq":
                self._fold_store_event(record, name, cycle, info)
        if overflow:
            self.metrics.peak("trace.tracer.records_dropped",
                              len(overflow))
        return records

    @staticmethod
    def _fold_store_event(record, name, cycle, info):
        store = record.store_events
        if name == "address_resolved":
            store["address_resolves"] = cycle
        elif name in ("ss_load_issued", "ss_load_returned"):
            store[name] = cycle
        elif name == "silent_dequeue":
            store["dequeue"] = cycle
            store["silent_dequeue"] = cycle
        elif name == "perform":
            store["dequeue"] = cycle
            if info == "nonsilent":
                store["performed_nonsilent"] = cycle
            else:
                store["performed_no_candidate"] = cycle

    # -- rendering -------------------------------------------------------

    def timeline(self, seq):
        """Figure-4-style one-line timeline for one instruction."""
        record = self.records.get(seq)
        if record is None:
            return f"#{seq}: (not traced)"
        events = " -> ".join(f"{name}@{cycle}"
                             for name, cycle in record.event_pairs())
        flag = " [SQUASHED]" if record.squashed else ""
        return f"#{record.seq} {record.text}: {events}{flag}"

    def store_timelines(self):
        """Timelines for every traced store, oldest first."""
        records = self.records
        lines = []
        for seq in sorted(records):
            if records[seq].store_events:
                lines.append(self.timeline(seq))
        return lines
