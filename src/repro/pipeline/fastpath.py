"""Fast-path simulation kernel: the reference core, only faster.

:class:`FastPathCPU` is a drop-in subclass of the reference
:class:`~repro.pipeline.cpu.CPU` with a hard guarantee: **bitwise
identical** cycle counts, retired-instruction streams, architectural
state, :class:`~repro.pipeline.cpu.CPUStats`, :mod:`repro.stats`
metrics and :mod:`repro.trace` event streams.  It changes how the
simulation is computed, never what it computes — the same contract
production simulators make for their fast paths (gem5's O3 event
queue, Sniper's interval core).  Three mechanisms:

**Decoded-instruction templates.**  Operand-class analysis
(``reads_rs1``/``writes_register``/port kind/...) is a pure function of
a static instruction, yet the reference core re-derives it per dynamic
instance through enum-set membership tests.  Templates are decoded once
per distinct static instruction — keyed by the interned operand tuple
(:meth:`repro.isa.Instruction.intern_key`), so equal instructions
anywhere in a process share one template — and dispatch becomes a cheap
stamp.  :class:`~repro.pipeline.dyninst.DynInst` objects are recycled
through a free-list pool (:meth:`DynInst.stamp` re-initializes every
slot).  Only provably unreferenced objects are pooled: non-store
instructions at commit (their single completion event has fired, their
queue entries are gone) and stores when their queue entry performs.
Squashed instructions are *not* pooled — squash-guarded events and lazy
waiter lists may still reference them, and a recycled object would make
those guards lie.

**Idle-cycle fast-forward.**  After each executed cycle the core checks
whether the cycle was *quiet*: no events fired, nothing dispatched /
issued / retired / squashed / dequeued, fetch idle, no memory-system
activity (:attr:`MemoryHierarchy.epoch`), and no ready instruction
blocked in a way whose retry has plug-in-visible side effects.  A quiet
cycle proves the machine is in a fixpoint that only a *timed* input can
break, and every timed input is enumerable — the event wheel: the
earliest scheduled event (FU completions, writebacks, load responses,
SS-Load returns), the store-queue head's dequeue-eligibility or
DRAM-fill-ready cycle, and each plug-in's declared wakeup
(:attr:`~repro.pipeline.plugins.OptimizationPlugin.ff_policy`).  The
clock jumps to the earliest of those, charging the skipped span's
per-cycle accounting exactly as if ticked: occupancy integrals,
``pipeline.sq.head_of_line_stall_cycles`` (the Figure 5 amplification
counter — the >100-cycle gap must survive fast-forward bit-exactly),
per-cycle ``sq/hol_stall`` trace events with explicit cycle stamps, and
dispatch-stall attribution.  A plug-in that makes no declaration
defaults to ``FF_EVERY_CYCLE``, which pins the jump target to the next
cycle — fast-forward around unknown plug-ins is *disabled*, never
approximate.

**Stage work-lists.**  The reference issue stage re-scans the whole
reservation-station window every cycle, re-testing operand readiness
per entry.  Here a seq-ordered ready list holds exactly the
instructions whose needed sources are all ready; instructions with
unready sources register as waiters on those physical registers and are
woken (and re-inserted in program order) by the producing writeback.
Program-order issue priority — and therefore port allocation, packing
and timing — is preserved exactly; source values are still captured at
scan time, which matters when a value-predicted producer is corrected
in the same cycle a consumer issues.

The speedup telemetry (:class:`FastPathStats`, exposed as
``cpu.fastpath``) deliberately stays **out** of the run's stats,
metrics and :class:`~repro.engine.session.RunResult`: a reference run
and a fast-path run share one spec fingerprint, so their results must
be byte-for-byte interchangeable — including through the result cache.
Wall-clock-ish quantities live caller-side, like the engine's batch
telemetry.
"""

from bisect import insort
from operator import attrgetter

from repro.isa.opcodes import (
    Op, is_div, is_load, is_mul, is_store, reads_rs1, reads_rs2,
    writes_register,
)
from repro.pipeline.cpu import CPU, SimulationError
from repro.pipeline.dyninst import DynInst, InstState, LQEntry, SQEntry
from repro.pipeline.plugins import (
    FF_PURE, FF_WAKEUP, OptimizationPlugin,
)

_SEQ = attrgetter("seq")

#: Process-wide decoded-template cache, keyed by the interned operand
#: tuple.  Bounded by the number of distinct static instructions.
_TEMPLATE_CACHE = {}

#: Free-list pool ceiling per core; beyond this, retired DynInsts go to
#: the garbage collector like in the reference core.
_POOL_CAP = 512


class InstTemplate:
    """Everything decode-time about one static instruction.

    ``kind`` selects the issue path (``alu``/``load``/``store``/
    ``mul``/``div``); ``src_needed`` are the operand indices whose
    readiness gates issue (note a store's data operand does not gate
    its address generation — exactly the reference
    ``_sources_ready`` rule).
    """

    __slots__ = ("op", "kind", "needs_rs", "wants_dest", "ren1", "ren2",
                 "src_needed")

    def __init__(self, inst):
        op = inst.op
        self.op = op
        if is_load(op):
            self.kind = "load"
        elif is_store(op):
            self.kind = "store"
        elif is_mul(op):
            self.kind = "mul"
        elif is_div(op):
            self.kind = "div"
        else:
            self.kind = "alu"
        self.needs_rs = op not in (Op.NOP, Op.HALT, Op.FENCE, Op.JMP)
        self.wants_dest = writes_register(op) and inst.rd != 0
        self.ren1 = reads_rs1(op) and inst.rs1 != 0
        self.ren2 = reads_rs2(op) and inst.rs2 != 0
        needed = []
        if reads_rs1(op):
            needed.append(0)
        if reads_rs2(op) and not is_store(op):
            needed.append(1)
        self.src_needed = tuple(needed)


class FastPathStats:
    """Fast-path telemetry; never part of a :class:`RunResult`."""

    __slots__ = ("cycles_skipped", "fast_forwards", "template_hits",
                 "template_misses", "pool_reuses", "pool_allocations")

    def __init__(self):
        self.cycles_skipped = 0
        self.fast_forwards = 0
        self.template_hits = 0
        self.template_misses = 0
        self.pool_reuses = 0
        self.pool_allocations = 0

    def as_dict(self):
        return {"fastpath." + name: getattr(self, name)
                for name in self.__slots__}

    def __repr__(self):
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<FastPathStats {inner}>"


class _PoolRecycler(OptimizationPlugin):
    """Internal hook that returns dead DynInsts to the core's pool.

    Appended *last* to the plug-in list by :class:`FastPathCPU`, so real
    plug-ins observe commit/perform before the object is eligible for
    re-stamping (which can only happen at a later dispatch anyway).  It
    carries no ``stats`` dict, so it never appears in observations.
    """

    name = "fastpath-pool"
    ff_policy = FF_PURE

    def on_commit(self, dyn):
        # Stores stay referenced by their SQ entry until they perform.
        if dyn.tmpl is not None and dyn.tmpl.kind != "store":
            self.cpu._recycle(dyn)

    def on_store_performed(self, entry):
        dyn = entry.dyn
        if (dyn.tmpl is not None and not dyn.squashed
                and dyn.state is InstState.COMMITTED):
            self.cpu._recycle(dyn)


class FastPathCPU(CPU):
    """The reference core with templates, work-lists and fast-forward."""

    def __init__(self, program, hierarchy, config=None, plugins=(),
                 metrics=None, trace=None):
        self.fastpath = FastPathStats()
        self._pool = []
        self._ready = []        # dispatched, all needed sources ready
        self._waiters = {}      # preg -> [DynInst] awaiting its writeback
        self._cycle_stall = None
        self._issue_blocked = False
        self._quiet = False
        super().__init__(program, hierarchy, config=config,
                         plugins=list(plugins) + [_PoolRecycler()],
                         metrics=metrics, trace=trace)
        self._templates = [self._template_for(inst) for inst in program]
        # Plug-ins whose end_of_cycle is the base-class no-op can be
        # skipped without any behaviour change (it returns 0 ports).
        self._eoc_plugins = [
            plugin for plugin in self.plugins
            if type(plugin).end_of_cycle
            is not OptimizationPlugin.end_of_cycle]

    # ------------------------------------------------------------------
    # decoded-instruction templates and the DynInst pool
    # ------------------------------------------------------------------

    def _template_for(self, inst):
        key = inst.key
        if key is None:
            key = inst.intern_key()
        tmpl = _TEMPLATE_CACHE.get(key)
        if tmpl is None:
            tmpl = InstTemplate(inst)
            _TEMPLATE_CACHE[key] = tmpl
            self.fastpath.template_misses += 1
        return tmpl

    def _recycle(self, dyn):
        if len(self._pool) < _POOL_CAP:
            self._pool.append(dyn)

    # ------------------------------------------------------------------
    # dispatch: template stamp instead of re-decode
    # ------------------------------------------------------------------

    def _dispatch(self):
        cfg = self.config
        templates = self._templates
        fp = self.fastpath
        count = 0
        while self.fetch_buffer and count < cfg.dispatch_width:
            inst, pred_taken, pred_target = self.fetch_buffer[0]
            tmpl = templates[inst.pc]
            kind = tmpl.kind
            if len(self.rob) >= cfg.rob_size:
                self._dispatch_stall("rob")
                break
            if tmpl.op is Op.FENCE:
                if self.rob or self.store_queue:
                    self._dispatch_stall("fence")
                    break
            if tmpl.needs_rs and len(self.rs) >= cfg.rs_size:
                self._dispatch_stall("rs")
                break
            if kind == "load" and len(self.load_queue) >= cfg.load_queue_size:
                self._dispatch_stall("lq")
                break
            if kind == "store" and len(self.store_queue) >= cfg.store_queue_size:
                self._dispatch_stall("sq")
                break
            pdst = None
            if tmpl.wants_dest:
                if self.free_list:
                    pdst = self.free_list.popleft()
                else:
                    for plugin in self.plugins:
                        pdst = plugin.provide_phys_reg()
                        if pdst is not None:
                            break
                if pdst is None:
                    self._dispatch_stall("preg")
                    break
            self.fetch_buffer.popleft()
            if self._pool:
                dyn = self._pool.pop()
                dyn.stamp(self._seq, inst)
                fp.pool_reuses += 1
            else:
                dyn = DynInst(self._seq, inst)
                fp.pool_allocations += 1
            dyn.tmpl = tmpl
            fp.template_hits += 1
            self._seq += 1
            dyn.pred_taken = pred_taken
            dyn.pred_target = pred_target
            if tmpl.ren1:
                dyn.src_pregs[0] = self.rename_map[inst.rs1]
            if tmpl.ren2:
                dyn.src_pregs[1] = self.rename_map[inst.rs2]
            if tmpl.wants_dest:
                dyn.pdst = pdst
                dyn.old_pdst = self.rename_map[inst.rd]
                self.rename_map[inst.rd] = pdst
                self.prf_ready[pdst] = False
                self.arch_version[inst.rd] += 1
            if self.trace.enabled:
                self.trace.emit("inst", "dispatch", cycle=self.cycle,
                                seq=dyn.seq, pc=dyn.pc, info=str(inst))
            self.rob.append(dyn)
            if tmpl.needs_rs:
                self.rs.append(dyn)
            else:
                dyn.state = InstState.DONE
                dyn.done_cycle = self.cycle
            if kind == "load":
                self.load_queue.append(LQEntry(dyn))
            elif kind == "store":
                self.store_queue.append(SQEntry(dyn))
            for plugin in self.plugins:
                plugin.on_dispatch(dyn)
            if tmpl.needs_rs:
                self._watch_sources(dyn, tmpl)
            self.stats.dispatched += 1
            count += 1

    def _dispatch_stall(self, kind):
        self._cycle_stall = kind
        super()._dispatch_stall(kind)

    # ------------------------------------------------------------------
    # issue: ready work-list instead of full-window scan
    # ------------------------------------------------------------------

    def _watch_sources(self, dyn, tmpl):
        waits = 0
        prf_ready = self.prf_ready
        waiters = self._waiters
        for index in tmpl.src_needed:
            preg = dyn.src_pregs[index]
            if preg is not None and not prf_ready[preg]:
                waiters.setdefault(preg, []).append(dyn)
                waits += 1
        dyn.waits = waits
        if waits == 0:
            self._ready.append(dyn)  # dispatch order == seq order

    def _wake(self, preg):
        waiters = self._waiters.pop(preg, None)
        if not waiters:
            return
        for dyn in waiters:
            # Stale entries: squashed waiters stay in the list until
            # the register is rewritten; skipping them here is the
            # reason squashed DynInsts are never pool-recycled.
            if dyn.squashed:
                continue
            dyn.waits -= 1
            if dyn.waits == 0 and dyn.state is InstState.DISPATCHED:
                insort(self._ready, dyn, key=_SEQ)

    def _writeback(self, dyn, value):
        if dyn.squashed:
            return
        super()._writeback(dyn, value)
        if dyn.pdst is not None:
            self._wake(dyn.pdst)

    def _apply_squash(self):
        if self._squash_req is None:
            return
        super()._apply_squash()
        self._ready = [d for d in self._ready if not d.squashed]

    def _issue(self):
        ready = self._ready
        if not ready:
            return
        cfg = self.config
        ports = self.ports
        issued = 0
        issued_alu_ops = ports["alu_issued"]
        packed_partners = ports["packed"]
        taken = None
        prf_value = self.prf_value
        trace_on = self.trace.enabled
        for dyn in ready:
            if issued >= cfg.issue_width:
                break
            tmpl = dyn.tmpl
            src_pregs = dyn.src_pregs
            src_values = dyn.src_values
            # Capture operand values at scan time, as the reference
            # scan does: a value-predicted producer corrected earlier
            # this cycle must be read back corrected.
            for index in tmpl.src_needed:
                preg = src_pregs[index]
                src_values[index] = (prf_value[preg]
                                     if preg is not None else 0)
            kind = tmpl.kind
            if kind == "alu":
                if ports["alu"] > 0:
                    ports["alu"] -= 1
                    self._issue_alu(dyn)
                    issued_alu_ops.append(dyn)
                else:
                    partner = self._find_pack_partner(
                        dyn, issued_alu_ops, packed_partners)
                    if partner is None:
                        self._issue_blocked = True
                        continue
                    packed_partners.add(id(partner))
                    self.stats.packed_alu_pairs += 1
                    self._issue_alu(dyn)
                    issued_alu_ops.append(dyn)
            elif kind == "load":
                if ports["load"] <= 0:
                    self._issue_blocked = True
                    continue
                if not self._try_issue_load(dyn):
                    # Disambiguation/forwarding wait: the retry is
                    # side-effect-free, so it does not block skipping.
                    continue
                ports["load"] -= 1
            elif kind == "store":
                if ports["store"] <= 0:
                    self._issue_blocked = True
                    continue
                ports["store"] -= 1
                self._issue_store_agen(dyn)
            elif kind == "mul":
                if not self._issue_arith(dyn, cfg.latency_mul,
                                         self.mul_busy_until):
                    self._issue_blocked = True
                    continue
            else:  # div
                if not self._issue_arith(dyn, cfg.latency_div,
                                         self.div_busy_until):
                    self._issue_blocked = True
                    continue
            dyn.state = InstState.ISSUED
            dyn.issue_cycle = self.cycle
            issued += 1
            self.stats.issued += 1
            if trace_on:
                self.trace.emit("inst", "issue", cycle=self.cycle,
                                seq=dyn.seq, pc=dyn.pc)
            if taken is None:
                taken = []
            taken.append(dyn)
        if taken:
            taken_ids = set(map(id, taken))
            self.rs = [d for d in self.rs if id(d) not in taken_ids]
            self._ready = [d for d in ready if id(d) not in taken_ids]

    def _plugins_end_of_cycle(self):
        plugins = self._eoc_plugins
        if not plugins:
            return
        ports = self.ports
        free_ports = max(0, ports["load"])
        for plugin in plugins:
            used = plugin.end_of_cycle(free_ports)
            used = used or 0
            ports["load"] = max(0, ports["load"] - used)
            free_ports = max(0, free_ports - used)

    def _record_cycle_metrics(self):
        # Dict-identical inline of the reference accounting
        # (:meth:`CPU._record_cycle_metrics`): on the fast path this is
        # the hottest per-executed-cycle block, and SimStats.inc/peak
        # are plain dict updates worth the call elision.
        metrics = self.metrics
        counters = metrics.counters
        maxima = metrics.maxima
        get = counters.get
        rob = len(self.rob)
        rs = len(self.rs)
        lq = len(self.load_queue)
        sq = len(self.store_queue)
        counters["pipeline.cycles"] = get("pipeline.cycles", 0) + 1
        counters["pipeline.rob.occupancy_integral"] = (
            get("pipeline.rob.occupancy_integral", 0) + rob)
        counters["pipeline.rs.occupancy_integral"] = (
            get("pipeline.rs.occupancy_integral", 0) + rs)
        counters["pipeline.lq.occupancy_integral"] = (
            get("pipeline.lq.occupancy_integral", 0) + lq)
        counters["pipeline.sq.occupancy_integral"] = (
            get("pipeline.sq.occupancy_integral", 0) + sq)
        if rob > maxima.get("pipeline.rob.high_water", rob - 1):
            maxima["pipeline.rob.high_water"] = rob
        if rs > maxima.get("pipeline.rs.high_water", rs - 1):
            maxima["pipeline.rs.high_water"] = rs
        if lq > maxima.get("pipeline.lq.high_water", lq - 1):
            maxima["pipeline.lq.high_water"] = lq
        if sq > maxima.get("pipeline.sq.high_water", sq - 1):
            maxima["pipeline.sq.high_water"] = sq
        if sq and self.store_queue[0].committed:
            counters["pipeline.sq.head_committed_cycles"] = (
                get("pipeline.sq.head_committed_cycles", 0) + 1)

    # ------------------------------------------------------------------
    # quiet-cycle detection and fast-forward
    # ------------------------------------------------------------------

    def step(self):
        stats = self.stats
        events_due = (self.cycle + 1) in self._events
        squash_before = self._squash_req is not None
        before = (stats.retired, stats.issued, stats.dispatched,
                  stats.silent_stores, stats.stores_performed,
                  stats.squashed_instructions, len(self.fetch_buffer),
                  self.fetch_pc, self.fetching_halted,
                  self.hierarchy.epoch)
        self._cycle_stall = None
        self._issue_blocked = False
        super().step()
        after = (stats.retired, stats.issued, stats.dispatched,
                 stats.silent_stores, stats.stores_performed,
                 stats.squashed_instructions, len(self.fetch_buffer),
                 self.fetch_pc, self.fetching_halted,
                 self.hierarchy.epoch)
        self._quiet = not (events_due or squash_before or self.halted
                           or self._issue_blocked
                           or self._squash_req is not None
                           or before != after)

    def run(self, max_cycles=None):
        limit = (max_cycles if max_cycles is not None
                 else self.config.max_cycles)
        while self.advance(limit):
            pass
        self.stats.cycles = self.cycle
        return self.stats

    def advance(self, limit):
        """The cooperative quantum (see :meth:`CPU.advance`), with the
        quiet-cycle fast-forward folded in so a lockstep driver skips
        idle spans exactly like :meth:`run` does."""
        if self.halted:
            return False
        if self.cycle >= limit:
            raise SimulationError(
                f"exceeded {limit} cycles without halting")
        self.step()
        if self._quiet:
            self._fast_forward(limit)
        return not self.halted

    def _fast_forward(self, limit):
        """Jump over the provably-inactive span after a quiet cycle.

        Every candidate below is a cycle at which *something* may act;
        anything later than all of them provably replays the quiet
        cycle verbatim.  Over-waking (a candidate earlier than the real
        next action) merely ticks an extra quiet cycle — always exact.
        """
        cycle = self.cycle
        candidates = []
        if self._events:
            candidates.append(min(self._events))
        head = self.store_queue[0] if self.store_queue else None
        head_waiting = head is not None and head.committed
        hol_stall = False
        if head_waiting:
            eligible = head.committed_cycle + self.config.store_dequeue_delay
            if cycle < eligible:
                candidates.append(eligible)
            elif (head.fill_requested
                    and head.fill_ready_cycle is not None
                    and cycle < head.fill_ready_cycle):
                candidates.append(head.fill_ready_cycle)
                hol_stall = True
            else:
                # A dequeue-eligible head on a quiet cycle should be
                # impossible; degrade to plain ticking, never skip it.
                candidates.append(cycle + 1)
        for plugin in self.plugins:
            policy = plugin.ff_policy
            if policy is FF_PURE or policy == FF_PURE:
                continue
            if policy == FF_WAKEUP:
                wake = plugin.ff_next_cycle()
                if wake is not None:
                    candidates.append(wake if wake > cycle else cycle + 1)
            else:  # FF_EVERY_CYCLE or anything unrecognized
                candidates.append(cycle + 1)
        target = min(candidates) if candidates else limit
        if target > limit:
            target = limit
        skipped = target - cycle - 1
        if skipped <= 0:
            return
        fp = self.fastpath
        fp.cycles_skipped += skipped
        fp.fast_forwards += 1
        # -- charge the span's per-cycle accounting as if ticked -------
        stall_kind = self._cycle_stall
        if stall_kind is not None:
            self.stats.dispatch_stalls[stall_kind] += skipped
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("pipeline.cycles", skipped)
            metrics.inc("pipeline.rob.occupancy_integral",
                        len(self.rob) * skipped)
            metrics.inc("pipeline.rs.occupancy_integral",
                        len(self.rs) * skipped)
            metrics.inc("pipeline.lq.occupancy_integral",
                        len(self.load_queue) * skipped)
            metrics.inc("pipeline.sq.occupancy_integral",
                        len(self.store_queue) * skipped)
            # High-water peaks were already recorded this cycle at the
            # same occupancies; re-peaking would be a no-op.
            if head_waiting:
                metrics.inc("pipeline.sq.head_committed_cycles", skipped)
            if hol_stall:
                metrics.inc("pipeline.sq.head_of_line_stall_cycles",
                            skipped)
            if stall_kind is not None:
                metrics.inc("pipeline.dispatch_stall." + stall_kind,
                            skipped)
        if hol_stall and self.trace.enabled:
            dyn = head.dyn
            for when in range(cycle + 1, target):
                self.trace.emit("sq", "hol_stall", cycle=when,
                                seq=dyn.seq, pc=dyn.pc, addr=head.addr)
        self.cycle = target - 1
