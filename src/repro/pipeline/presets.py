"""Named core configurations used across the paper's experiments."""

from repro.pipeline.config import CPUConfig


def baseline_server():
    """The paper's Baseline: a typical commercial server core
    (out-of-order, speculative) — the defaults."""
    return CPUConfig()


def figure6_core():
    """The Figure 6 experiment configuration: a 5-entry store queue
    (so a long-to-dequeue store head-of-line blocks quickly)."""
    return CPUConfig(store_queue_size=5)


def narrow_inorder_like():
    """A deliberately tiny window for stress/differential testing:
    every structural stall path gets exercised."""
    return CPUConfig(fetch_width=1, dispatch_width=1, issue_width=1,
                     commit_width=1, rob_size=8, rs_size=4,
                     store_queue_size=2, load_queue_size=2,
                     num_phys_regs=40)


def wide_alu_starved():
    """Wide front end, single ALU port: operand packing becomes the
    binding resource (the IV-B3 probe configuration)."""
    return CPUConfig(num_alu_ports=1, issue_width=4, dispatch_width=4,
                     fetch_width=4, commit_width=4)


def rename_bound():
    """Small physical register file, single multiply unit: rename
    headroom dominates — the register-file-compression probe."""
    return CPUConfig(num_phys_regs=48, rob_size=128, rs_size=96,
                     load_queue_size=32, dispatch_width=4,
                     fetch_width=4, issue_width=4, commit_width=4,
                     num_mul_units=1, latency_mul=4)


PRESETS = {
    "baseline-server": baseline_server,
    "figure6": figure6_core,
    "narrow": narrow_inorder_like,
    "alu-starved": wide_alu_starved,
    "rename-bound": rename_bound,
}
