"""Computation-reuse attack (Sections IV-C2, VI-A3).

Under the Sv (operand-value-keyed) variant, a memoization hit occurs
iff a dynamic instruction's operand values equal a previous instance's
— an equality transmitter on *operands*.  The attacker preconditions
the table by executing the shared code with a guess; the victim then
executes the same static instruction with its secret operand, and the
run time reveals whether the divide was skipped.

The same PoC run against the Sn (register-name-keyed) variant shows the
defense angle of Section VI-A3: Sn's hit/miss outcome is independent of
the operand *values*, so the attack learns nothing.
"""

from dataclasses import dataclass

from repro.engine import (
    HierarchySpec, PluginSpec, SimSpec, TaintSpec, run_spec,
)
from repro.isa.assembler import Assembler

GUESS_ADDR = 0x1000
SECRET_ADDR = 0x2000


def build_shared_division_program(repeat=4):
    """A "shared library" divide executed first on the attacker's guess,
    then on the victim's secret, at the same static PC.

    The operand is loaded through a pointer so both phases run the
    identical static instruction (this is how shared code behaves).
    The dependent chain of ``repeat`` divides amplifies the hit/miss
    latency difference.
    """
    asm = Assembler()
    asm.li(1, GUESS_ADDR)
    asm.li(2, 2)                 # loop over {guess, secret}
    asm.li(3, 0)
    asm.li(9, 7)                 # divisor
    asm.label("phase")
    asm.load(4, 1, 0)            # operand (guess, then secret)
    for _ in range(repeat):
        asm.div(5, 4, 9)         # the shared static divide(s)
        asm.add(4, 5, 4)
    asm.li(1, SECRET_ADDR)       # second phase reads the secret
    asm.addi(3, 3, 1)
    asm.blt(3, 2, "phase")
    asm.fence()
    asm.halt()
    return asm.assemble()


@dataclass
class ReuseAttackResult:
    guess: int
    cycles: int
    reuse_hits: int


class ComputationReuseAttack:
    """Measure per-guess timing under a chosen reuse variant."""

    def __init__(self, secret_value, variant="sv", repeat=4):
        self.secret_value = secret_value
        self.variant = variant
        self.program = build_shared_division_program(repeat)

    def measure_spec(self, guess):
        return SimSpec(
            program=self.program,
            hierarchy=HierarchySpec(memory_size=1 << 16),
            plugins=(PluginSpec.of("computation-reuse",
                                   variant=self.variant),),
            mem_writes=((GUESS_ADDR, guess, 8),
                        (SECRET_ADDR, self.secret_value, 8)),
            label=f"guess={guess:#x}",
            taint=TaintSpec.of(
                secret=((SECRET_ADDR, SECRET_ADDR + 8),),
                public=((GUESS_ADDR, GUESS_ADDR + 8),)))

    def measure(self, guess):
        result = run_spec(self.measure_spec(guess))
        return ReuseAttackResult(guess=guess, cycles=result.cycles,
                                 reuse_hits=result.stats["reuse_hits"])

    def distinguishes(self, guess_equal, guess_different):
        """Cycle counts for an equal vs a different guess."""
        equal = self.measure(guess_equal)
        different = self.measure(guess_different)
        return equal.cycles, different.cycles

    def recover_value(self, guesses):
        """Replay over candidate operand values (Sv leaks, Sn doesn't)."""
        baseline = None
        experiments = 0
        results = []
        for guess in guesses:
            experiments += 1
            cycles = self.measure(guess).cycles
            results.append((guess, cycles))
            if baseline is None or cycles < baseline:
                baseline = cycles
        fastest = [g for g, c in results if c == baseline]
        slowest = max(c for _g, c in results)
        if baseline == slowest:
            return None, experiments   # no signal (Sn variant)
        return (fastest[0] if len(fastest) == 1 else None), experiments
