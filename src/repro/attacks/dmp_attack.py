"""The universal read gadget through the 3-level IMP (Figures 1 & 7).

End-to-end reproduction of Section V-B: an attacker program that passes
the sandbox verifier triggers the indirect-memory prefetcher, which —
having no knowledge of array bounds — dereferences an attacker-planted
"target" value past the training region of ``Z``, reads the victim's
secret byte ``y = Y[target]`` at an arbitrary kernel address, and
transmits it by prefetching ``X[y]``, observable via Prime+Probe.

Array shapes chosen by the attacker (all legal declarations):

* ``Z``: 8-byte elements — holds training indices and, in its last
  element, the byte offset of the secret relative to ``&Y[0]``;
* ``Y``: 1-byte elements — so the learned scale is 1 and the prefetcher
  can be steered to *any byte address* above ``&Y[0]``;
* ``X``: 64-byte (cache-line) elements — so each possible secret byte
  value maps to its own cache line, giving the covert channel
  byte resolution.

Repeating with ``target`` walking over kernel memory leaks it all: the
universal read gadget.
"""

from dataclasses import dataclass, field

from repro.attacks.covert_channel import PrimeProbeReceiver
from repro.engine import CacheSpec, HierarchySpec, PluginSpec
from repro.sandbox.ebpf import BpfArray, BpfProgram
from repro.sandbox.runtime import SandboxRuntime

#: Distinct, non-affine training bytes: their non-linearity in the loop
#: index prevents the solver from confirming the spurious Z→X link, and
#: the sets they pollute are known to the attacker and excluded.
#: Secrets that collide with the first set are re-leaked with the
#: second, disjoint set (active replay with changed preconditioning,
#: Section II-2).
TRAINING_SETS = (
    (37, 101, 59, 83, 7, 151, 29, 67),
    (43, 107, 53, 89, 13, 139, 31, 71),
)
TRAINING_BYTES = TRAINING_SETS[0]


def build_attacker_program(n_iterations, null_checks=True):
    """The paper's Figure 7a program: ``for j: X[Y[Z[j]]]``.

    With ``null_checks=False`` the ``if (!v) return 0`` incantations are
    omitted — the verifier must reject that variant (Section V-B1:
    "eBPF complains unless one adds explicit NULL dereference checks").
    """
    # Z is declared longer than the loop bound so that the prefetcher's
    # look-ahead past the target lands in attacker-padded (harmless)
    # elements rather than unrelated memory whose junk values would
    # pollute unpredictable cache sets.
    program = BpfProgram(arrays=(
        BpfArray("Z", elem_size=8, length=n_iterations + 8),
        BpfArray("Y", elem_size=1, length=256),
        BpfArray("X", elem_size=64, length=256),
    ))
    program.mov_imm(1, 0)                    # j = 0
    program.label("loop")
    program.mov_reg(2, 1)                    # i = j
    program.lookup(3, "Z", 2)                # v = Z.lookup(&i)
    if null_checks:
        program.jeq_imm(3, 0, "out")         # if (!v) return 0
    program.load(4, 3, 0, width=8)           # z = *v
    program.lookup(5, "Y", 4)                 # v = Y.lookup(z)
    if null_checks:
        program.jeq_imm(5, 0, "out")
    program.load(6, 5, 0, width=1)            # y = *v (one byte)
    program.lookup(7, "X", 6)                  # v = X.lookup(y)
    if null_checks:
        program.jeq_imm(7, 0, "out")
    program.load(8, 7, 0, width=8)             # if (!*v) return 0
    program.add_imm(1, 1)                      # j++
    program.jlt_imm(1, n_iterations - 1, "loop")
    program.label("out")
    program.exit()
    return program


@dataclass
class URGAttackConfig:
    """Geometry and layout for the end-to-end URG demonstration."""

    n_iterations: int = 24
    num_l1_sets: int = 256          # >= 256 so each byte value has a set
    l1_ways: int = 4
    l1_policy: str = "lru"          # lru / fifo / random all work
    line_size: int = 64
    memory_size: int = 1 << 22
    sandbox_base: int = 0x1_0000
    probe_buffer_base: int = 0x20_0000
    kernel_secret_base: int = 0x10_0000
    imp_levels: int = 3
    imp_delta: int = 4
    prefetch_buffer_size: int = 0
    use_l2: bool = False


@dataclass
class LeakResult:
    """Outcome of one leak attempt for a single byte."""

    target_addr: int
    true_byte: int
    leaked_byte: object          # int, or None when undecidable
    evicted_sets: list = field(default_factory=list)
    candidate_sets: list = field(default_factory=list)

    @property
    def correct(self):
        return self.leaked_byte == self.true_byte


class DMPSandboxAttack:
    """Drives the full attack: layout, training data, run, receive."""

    def __init__(self, config=None):
        self.config = config if config is not None else URGAttackConfig()
        cfg = self.config
        # The hierarchy persists across attack phases (the Prime+Probe
        # receiver's set state *is* the channel), so it is built once
        # from a declarative engine spec and then owned by the attack.
        self.hierarchy_spec = HierarchySpec(
            memory_size=cfg.memory_size,
            l1=CacheSpec(num_sets=cfg.num_l1_sets, ways=cfg.l1_ways,
                         line_size=cfg.line_size, policy=cfg.l1_policy),
            l2=(CacheSpec(num_sets=2 * cfg.num_l1_sets, ways=8,
                          line_size=cfg.line_size)
                if cfg.use_l2 else None),
            prefetch_buffer_size=cfg.prefetch_buffer_size)
        self.hierarchy = self.hierarchy_spec.build()
        self.runtime = SandboxRuntime(self.hierarchy,
                                      sandbox_base=cfg.sandbox_base)
        self.program = build_attacker_program(cfg.n_iterations)
        self.runtime.load_program(self.program)
        self.receiver = PrimeProbeReceiver(self.hierarchy,
                                           cfg.probe_buffer_base)
        self.last_cpu = None
        self.last_imp = None

    # -- layout knowledge the attacker legitimately has -----------------

    @property
    def base_y(self):
        return self.runtime.array_base("Y")

    @property
    def base_x(self):
        return self.runtime.array_base("X")

    def _x_set_of_byte(self, byte):
        """The L1 set that ``X[byte]``'s line maps to."""
        return self.hierarchy.l1.set_index(self.base_x + 64 * byte)

    def _known_pollution_sets(self, training_bytes):
        """Sets the attack loop touches with *known* addresses."""
        l1 = self.hierarchy.l1
        known = set()
        # Training bytes, plus 0: the Y loads themselves stride during
        # training, so the prefetcher also walks Y[i+Δ] — reading the
        # attacker's own zero padding and prefetching X[0].
        for byte in tuple(training_bytes) + (0,):
            known.add(self._x_set_of_byte(byte))
        base_z = self.runtime.array_base("Z")
        z_bytes = 8 * self.config.n_iterations
        for offset in range(0, z_bytes + self.config.imp_delta * 8 + 64, 64):
            known.add(l1.set_index(base_z + offset))
        known.add(l1.set_index(self.base_y))
        return known

    # -- attack phases ---------------------------------------------------

    def install_training_data(self, target_offset,
                              training_bytes=TRAINING_SETS[0]):
        """Attacker map updates: training indices + the target pointer.

        ``target_offset`` is ``secret_addr - &Y[0]`` — the value the
        prefetcher will blindly dereference (step 2 of Figure 1).
        """
        cfg = self.config
        for i in range(cfg.n_iterations - 1):
            self.runtime.map_update("Z", i, i % len(training_bytes))
        self.runtime.map_update("Z", cfg.n_iterations - 1, target_offset)
        # Harmless padding: look-aheads past the target resolve to Y[0].
        for i in range(cfg.n_iterations, cfg.n_iterations + 8):
            self.runtime.map_update("Z", i, 0)
        for index, byte in enumerate(training_bytes):
            self.runtime.map_update("Y", index, byte)
        # X contents are irrelevant (constant zero avoids stray links).

    def _leak_attempt(self, target_addr, training_bytes, max_cycles):
        cfg = self.config
        self.install_training_data(target_addr - self.base_y,
                                   training_bytes)
        imp = PluginSpec.of("indirect-memory-prefetcher",
                            levels=cfg.imp_levels,
                            delta=cfg.imp_delta).build()
        self.hierarchy.flush_all()
        self.receiver.prime()
        cpu = self.runtime.run(plugins=[imp], max_cycles=max_cycles)
        imp.drain()   # the prefetcher outlives the sandbox program
        self.last_cpu = cpu
        self.last_imp = imp
        probe = self.receiver.probe()
        evicted = self.receiver.evicted_sets(probe)
        known = self._known_pollution_sets(training_bytes)
        base_set = self.hierarchy.l1.set_index(self.base_x)
        candidates = []
        for set_index in evicted:
            if set_index in known:
                continue
            byte = (set_index - base_set) % self.hierarchy.l1.num_sets
            if 0 <= byte < 256:
                candidates.append((set_index, byte))
        return evicted, candidates

    def _excluded_bytes(self, training_bytes):
        """Byte values whose transmit set is masked by known pollution."""
        base_set = self.hierarchy.l1.set_index(self.base_x)
        num_sets = self.hierarchy.l1.num_sets
        excluded = set()
        for set_index in self._known_pollution_sets(training_bytes):
            byte = (set_index - base_set) % num_sets
            if 0 <= byte < 256:
                excluded.add(byte)
        return excluded

    def leak_byte(self, target_addr, max_cycles=400_000):
        """Leak one byte of kernel memory at ``target_addr``.

        Replays with a disjoint training set when a run is inconclusive
        (the secret collided with a training byte).  If every replay is
        empty, the secret must lie in the intersection of the rounds'
        masked byte sets; a singleton intersection is leaked by
        elimination, anything larger is reported as undecidable
        (a layout-shifting replay would disambiguate; see DESIGN.md).
        """
        if not target_addr > self.base_y:
            raise ValueError("URG reach is [&Y[0], top of memory) — "
                             "see Section IV-D4")
        true_byte = self.hierarchy.memory.read(target_addr, 1)
        last_evicted, last_candidates = [], []
        all_empty = True
        for training_bytes in TRAINING_SETS:
            evicted, candidates = self._leak_attempt(
                target_addr, training_bytes, max_cycles)
            last_evicted, last_candidates = evicted, candidates
            if len(candidates) == 1:
                return LeakResult(
                    target_addr=target_addr, true_byte=true_byte,
                    leaked_byte=candidates[0][1], evicted_sets=evicted,
                    candidate_sets=[s for s, _ in candidates])
            if candidates:
                all_empty = False
        leaked = None
        if all_empty and self.config.imp_levels == 3:
            masked = set.intersection(
                *(self._excluded_bytes(t) for t in TRAINING_SETS))
            if len(masked) == 1:
                leaked = masked.pop()
        return LeakResult(
            target_addr=target_addr, true_byte=true_byte,
            leaked_byte=leaked, evicted_sets=last_evicted,
            candidate_sets=[s for s, _ in last_candidates])

    def leak_bytes(self, start_addr, length):
        """The universal read gadget: walk ``target`` over memory."""
        return [self.leak_byte(start_addr + i) for i in range(length)]
