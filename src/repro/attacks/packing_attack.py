"""Operand-packing attack (Section IV-B3, Figure 3 Example 4).

Operand packing fires only when *all four* operands of two co-located
arithmetic ops are narrow.  A receiver that controls one of the two
instructions (the paper's SMT-sibling scenario) sets its own operands
narrow, so packing occurs strictly as a function of the victim
instruction's operands — leaking whether the victim's values fit in 16
bits.  Our single-pipeline stand-in co-locates attacker and victim ops
in the same issue window, which produces the same contended-slot
condition the SMT scenario creates.
"""

from dataclasses import dataclass

from repro.engine import (
    HierarchySpec, PluginSpec, SimSpec, TaintSpec, run_spec,
)
from repro.isa.assembler import Assembler
from repro.pipeline.config import CPUConfig

VICTIM_ADDR = 0x1000


def build_colocated_program(pairs=64):
    """Bursts of ALU work: one victim op + attacker ops per burst.

    With a single ALU port and issue width 4, every cycle has more
    ready ALU ops than ports; throughput then depends on how many pairs
    pack — i.e. on whether the victim operand is narrow.
    """
    asm = Assembler()
    asm.li(1, VICTIM_ADDR)
    asm.load(2, 1, 0)            # the victim's (secret) operand
    asm.li(3, 5)                 # attacker's narrow operand
    asm.fence()
    for _ in range(pairs):
        asm.add(4, 2, 2)         # victim op: operands = secret
        asm.add(5, 3, 3)         # attacker op: narrow on purpose
        asm.xor(6, 3, 3)         # more attacker ops than ports
        asm.or_(7, 3, 3)
    asm.fence()
    asm.halt()
    return asm.assemble()


@dataclass
class PackingProbeResult:
    victim_value: int
    cycles: int
    packs: int


class OperandPackingAttack:
    """Measures whether the victim's operand is narrow (< 2^16)."""

    def __init__(self, pairs=64):
        self.pairs = pairs
        self.program = build_colocated_program(pairs)
        # One ALU port makes packing the binding resource; commit and
        # dispatch are widened so they can't mask the ALU throughput.
        self.config = CPUConfig(num_alu_ports=1, issue_width=4,
                                dispatch_width=4, fetch_width=4,
                                commit_width=4)

    def measure_spec(self, victim_value):
        return SimSpec(
            program=self.program, config=self.config,
            hierarchy=HierarchySpec(memory_size=1 << 16),
            plugins=(PluginSpec.of("operand-packing"),),
            mem_writes=((VICTIM_ADDR, victim_value, 8),),
            label=f"victim={victim_value:#x}",
            taint=TaintSpec.of(secret=((VICTIM_ADDR,
                                        VICTIM_ADDR + 8),)))

    def measure(self, victim_value):
        result = run_spec(self.measure_spec(victim_value))
        packs = result.observations["plugins"]["operand-packing"]["packs"]
        return PackingProbeResult(victim_value=victim_value,
                                  cycles=result.cycles,
                                  packs=packs)

    def classify(self, victim_value, narrow_reference=5,
                 wide_reference=1 << 20):
        """Active attack: is the victim operand narrow?

        The attacker calibrates with its own known-narrow and
        known-wide runs, then compares the victim's timing.
        """
        narrow = self.measure(narrow_reference).cycles
        wide = self.measure(wide_reference).cycles
        victim = self.measure(victim_value).cycles
        threshold = (narrow + wide) // 2
        return victim < threshold
