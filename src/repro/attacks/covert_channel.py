"""Cache covert-channel receivers (Section II of the paper).

The classic Prime+Probe receiver (Osvik, Shamir & Tromer, CT-RSA'06),
operating on the simulator's cache hierarchy: the attacker *primes*
cache sets with its own lines, lets the transmitter run, then *probes*
its lines again — a set whose probe is slow lost a way to the victim.

The receiver measures with access latencies, exactly what a real
receiver derives from its timer; there is no oracle access to cache
internals on this path.  (Tests separately use `Cache.resident_lines`
to cross-check the receiver against ground truth.)
"""


class PrimeProbeReceiver:
    """Prime+Probe over the L1 (or any) cache of a hierarchy.

    Parameters
    ----------
    hierarchy:
        The shared :class:`repro.memory.MemoryHierarchy`.
    buffer_base:
        Base address of the attacker's own probing buffer.  Must be
        aligned to ``num_sets * line_size`` so that offset-zero maps to
        set 0, and must span ``ways * num_sets * line_size`` bytes.
    """

    def __init__(self, hierarchy, buffer_base, cache=None):
        self.hierarchy = hierarchy
        self.cache = cache if cache is not None else hierarchy.l1
        span = self.cache.num_sets * self.cache.line_size
        if buffer_base % span:
            raise ValueError(
                f"buffer_base {buffer_base:#x} must be aligned to "
                f"{span:#x}")
        self.buffer_base = buffer_base
        #: Latency above which a probe access counts as a miss.
        self.miss_threshold = hierarchy.latencies.l1_hit

    def way_address(self, set_index, way):
        """Attacker-buffer address mapping to ``set_index`` (one per way)."""
        stride = self.cache.num_sets * self.cache.line_size
        return (self.buffer_base + set_index * self.cache.line_size
                + way * stride)

    def prime(self, target_sets=None):
        """Fill every target set with the attacker's own lines."""
        if target_sets is None:
            target_sets = range(self.cache.num_sets)
        for set_index in target_sets:
            for way in range(self.cache.ways):
                self.hierarchy.read(self.way_address(set_index, way))

    def probe(self, target_sets=None):
        """Re-access primed lines; returns ``{set_index: total_latency}``."""
        if target_sets is None:
            target_sets = range(self.cache.num_sets)
        latencies = {}
        for set_index in target_sets:
            total = 0
            for way in range(self.cache.ways):
                _value, latency, _level = self.hierarchy.read(
                    self.way_address(set_index, way))
                total += latency
            latencies[set_index] = total
        return latencies

    def evicted_sets(self, probe_latencies):
        """Sets where at least one way missed (victim activity)."""
        baseline = self.cache.ways * self.miss_threshold
        return sorted(set_index
                      for set_index, latency in probe_latencies.items()
                      if latency > baseline)


class FlushReloadReceiver:
    """Flush+Reload (Yarom & Falkner, Security'14) for shared-memory
    settings: flush a shared line, let the victim run, reload and time.

    Used by tests as a second receiver against the same transmitters.
    """

    def __init__(self, hierarchy):
        self.hierarchy = hierarchy

    def flush(self, addr):
        self.hierarchy.l1.invalidate(addr)
        if self.hierarchy.l2 is not None:
            self.hierarchy.l2.invalidate(addr)

    def reload(self, addr):
        """Returns (was_cached, latency)."""
        cached = self.hierarchy.line_in_l1(addr) or self.hierarchy.line_in_l2(addr)
        _value, latency, _level = self.hierarchy.read(addr)
        return cached, latency
