"""The silent-store amplification gadget (Figure 5 / Section V-A2).

Goal: maximize the time the *target store* takes to dequeue from the
store queue when it is **not** silent, so that a single dynamic store's
silence becomes an end-to-end timing difference.  Recipe:

* the target line is warm when the store's address resolves, so the
  SS-Load issues and returns early (the store becomes a silent-store
  candidate — Cases A/B of Figure 4, never C/D);
* a **delay sub-gadget** (a pointer-chasing load that misses to memory)
  stalls a **flush sub-gadget** (loads that contend for the target
  line's cache set) until after the SS-Load has completed;
* the flush then evicts the target line, so a non-silent store reaching
  the head of the store queue must re-fetch its line from memory —
  head-of-line blocking the (in-order-dequeue) store queue and stalling
  the pipeline behind it.

The builder below works for any set-associative L1 (the flush emits one
conflicting load per way), not just the direct-mapped example of
Figure 5.
"""

from dataclasses import dataclass

from repro.engine import (
    CacheSpec, HierarchySpec, LatencySpec, PluginSpec, SimSpec,
    TaintSpec,
)
from repro.isa.assembler import Assembler
from repro.pipeline.config import CPUConfig


@dataclass
class GadgetLayout:
    """Addresses used by the gadget; all attacker/victim-layout known.

    ``delay_ptr_addr`` is the location read by the delay load (``A`` in
    Figure 5); memory at that address holds ``flush_area_base``, making
    the flush loads data-dependent on the delay load.  Flush addresses
    are derived from the loaded pointer so they cannot issue before the
    delay load returns.
    """

    target_addr: int          # S: the target store's address
    delay_ptr_addr: int       # A: pointer cell, line must be cold
    flush_area_base: int      # A' region: lines conflicting with set(S)

    def flush_addresses(self, cache):
        """One address per way, all mapping to ``set(S)``."""
        target_set = cache.set_index(self.target_addr)
        base_set = cache.set_index(self.flush_area_base)
        first = (self.flush_area_base
                 + ((target_set - base_set) % cache.num_sets)
                 * cache.line_size)
        way_stride = cache.num_sets * cache.line_size
        return [first + way * way_stride for way in range(cache.ways)]


def flush_pointer_write(layout, cache):
    """The flush-pointer precondition as an ``(addr, value, width)``
    memory write (Figure 5's planted ``A`` cell), spec-friendly."""
    addresses = layout.flush_addresses(cache)
    return (layout.delay_ptr_addr, addresses[0], 8)


def plant_flush_pointer(memory, layout, cache):
    """Write the flush pointer at ``A`` (precondition of Figure 5)."""
    addr, value, width = flush_pointer_write(layout, cache)
    memory.write(addr, value, width)
    return layout.flush_addresses(cache)


def emit_gadget(asm, layout, cache, ptr_reg=4, value_reg=5):
    """Emit delay + flush sub-gadgets into ``asm``.

    Must be followed by the target store.  ``ptr_reg`` receives the
    flush pointer; ``value_reg`` is a scratch destination.
    """
    way_stride = cache.num_sets * cache.line_size
    asm.annotate("delay sub-gadget: pointer-chasing miss")
    asm.li(ptr_reg, layout.delay_ptr_addr)
    asm.load(ptr_reg, ptr_reg, 0)
    for way in range(cache.ways):
        asm.annotate(f"flush sub-gadget: way {way} of set(S)")
        asm.load(value_reg, ptr_reg, way * way_stride)
    return asm


def build_timing_probe(layout, cache, store_value, warm_addresses=(),
                       scratch_base=None, backpressure_stores=4):
    """A complete single-store timing probe program.

    Warms the target line (and ``warm_addresses``), fences, runs the
    gadget, performs the target store of ``store_value`` (2 bytes), then
    issues ``backpressure_stores`` younger stores to scratch locations
    that pile up behind it in the store queue.  The scratch stores write
    a constant to pre-warmed lines holding a *different* constant, so
    they are deterministically non-silent and cost the same in every
    run; the only data-dependent event is the target store's silence.
    Total runtime (``CPUStats.cycles``) is the measurement.
    """
    if scratch_base is None:
        scratch_base = layout.target_addr + 4096
    asm = Assembler()
    asm.li(1, layout.target_addr)
    asm.annotate("precondition: line(S) present in cache")
    asm.load(2, 1, 0)
    for addr in warm_addresses:
        asm.li(3, addr)
        asm.load(2, 3, 0)
    for index in range(backpressure_stores):
        asm.li(3, scratch_base + 64 * index)
        asm.load(2, 3, 0)
    asm.fence()
    emit_gadget(asm, layout, cache)
    asm.annotate("target store")
    asm.li(6, store_value)
    asm.store(6, 1, 0, width=2)
    asm.li(8, 1)
    for index in range(backpressure_stores):
        asm.li(7, scratch_base + 64 * index)
        asm.store(8, 7, 0, width=2)
    asm.fence()
    asm.halt()
    return asm.assemble()


DEFAULT_LAYOUT = GadgetLayout(target_addr=0x8000,
                              delay_ptr_addr=0x4_0000,
                              flush_area_base=0x5_0000)


def amplified_probe_spec(secret_value, store_value, *, width=2,
                         store_queue_size=5, layout=None,
                         cache_spec=None, mem_latency=120,
                         memory_size=1 << 20, warm_addresses=(),
                         backpressure_stores=4, gadget=True,
                         seed=0, label=""):
    """One amplified timing probe as an engine :class:`SimSpec`.

    The secret (``secret_value``) sits at the layout's target address;
    the probe stores ``store_value`` over it through the gadget (or a
    bare store+fence sequence with ``gadget=False``) and the total
    cycle count is the measurement.  Everything — program, memory
    image, geometry — is captured declaratively, so probes fan out
    across workers and hit the result cache.
    """
    layout = layout if layout is not None else DEFAULT_LAYOUT
    cache_spec = cache_spec if cache_spec is not None else CacheSpec()
    l1 = cache_spec.build()
    mem_writes = [(layout.target_addr, secret_value, width)]
    if gadget:
        program = build_timing_probe(
            layout, l1, store_value, warm_addresses=warm_addresses,
            backpressure_stores=backpressure_stores)
        mem_writes.append(flush_pointer_write(layout, l1))
    else:
        asm = Assembler()
        asm.li(1, layout.target_addr)
        asm.load(2, 1, 0)
        asm.fence()
        asm.li(6, store_value)
        asm.store(6, 1, 0, width=width)
        asm.fence()
        asm.halt()
        program = asm.assemble()
    return SimSpec(
        program=program,
        config=CPUConfig(store_queue_size=store_queue_size),
        hierarchy=HierarchySpec(
            memory_size=memory_size, l1=cache_spec,
            latencies=LatencySpec(memory=mem_latency)),
        plugins=(PluginSpec.of("silent-stores"),),
        mem_writes=tuple(mem_writes), seed=seed, label=label,
        taint=TaintSpec.of(
            secret=((layout.target_addr, layout.target_addr + width),)))
