"""The silent-store amplification gadget (Figure 5 / Section V-A2).

Goal: maximize the time the *target store* takes to dequeue from the
store queue when it is **not** silent, so that a single dynamic store's
silence becomes an end-to-end timing difference.  Recipe:

* the target line is warm when the store's address resolves, so the
  SS-Load issues and returns early (the store becomes a silent-store
  candidate — Cases A/B of Figure 4, never C/D);
* a **delay sub-gadget** (a pointer-chasing load that misses to memory)
  stalls a **flush sub-gadget** (loads that contend for the target
  line's cache set) until after the SS-Load has completed;
* the flush then evicts the target line, so a non-silent store reaching
  the head of the store queue must re-fetch its line from memory —
  head-of-line blocking the (in-order-dequeue) store queue and stalling
  the pipeline behind it.

The builder below works for any set-associative L1 (the flush emits one
conflicting load per way), not just the direct-mapped example of
Figure 5.
"""

from dataclasses import dataclass

from repro.isa.assembler import Assembler


@dataclass
class GadgetLayout:
    """Addresses used by the gadget; all attacker/victim-layout known.

    ``delay_ptr_addr`` is the location read by the delay load (``A`` in
    Figure 5); memory at that address holds ``flush_area_base``, making
    the flush loads data-dependent on the delay load.  Flush addresses
    are derived from the loaded pointer so they cannot issue before the
    delay load returns.
    """

    target_addr: int          # S: the target store's address
    delay_ptr_addr: int       # A: pointer cell, line must be cold
    flush_area_base: int      # A' region: lines conflicting with set(S)

    def flush_addresses(self, cache):
        """One address per way, all mapping to ``set(S)``."""
        target_set = cache.set_index(self.target_addr)
        base_set = cache.set_index(self.flush_area_base)
        first = (self.flush_area_base
                 + ((target_set - base_set) % cache.num_sets)
                 * cache.line_size)
        way_stride = cache.num_sets * cache.line_size
        return [first + way * way_stride for way in range(cache.ways)]


def plant_flush_pointer(memory, layout, cache):
    """Write the flush pointer at ``A`` (precondition of Figure 5)."""
    addresses = layout.flush_addresses(cache)
    memory.write(layout.delay_ptr_addr, addresses[0])
    return addresses


def emit_gadget(asm, layout, cache, ptr_reg=4, value_reg=5):
    """Emit delay + flush sub-gadgets into ``asm``.

    Must be followed by the target store.  ``ptr_reg`` receives the
    flush pointer; ``value_reg`` is a scratch destination.
    """
    way_stride = cache.num_sets * cache.line_size
    asm.annotate("delay sub-gadget: pointer-chasing miss")
    asm.li(ptr_reg, layout.delay_ptr_addr)
    asm.load(ptr_reg, ptr_reg, 0)
    for way in range(cache.ways):
        asm.annotate(f"flush sub-gadget: way {way} of set(S)")
        asm.load(value_reg, ptr_reg, way * way_stride)
    return asm


def build_timing_probe(layout, cache, store_value, warm_addresses=(),
                       scratch_base=None, backpressure_stores=4):
    """A complete single-store timing probe program.

    Warms the target line (and ``warm_addresses``), fences, runs the
    gadget, performs the target store of ``store_value`` (2 bytes), then
    issues ``backpressure_stores`` younger stores to scratch locations
    that pile up behind it in the store queue.  The scratch stores write
    a constant to pre-warmed lines holding a *different* constant, so
    they are deterministically non-silent and cost the same in every
    run; the only data-dependent event is the target store's silence.
    Total runtime (``CPUStats.cycles``) is the measurement.
    """
    if scratch_base is None:
        scratch_base = layout.target_addr + 4096
    asm = Assembler()
    asm.li(1, layout.target_addr)
    asm.annotate("precondition: line(S) present in cache")
    asm.load(2, 1, 0)
    for addr in warm_addresses:
        asm.li(3, addr)
        asm.load(2, 3, 0)
    for index in range(backpressure_stores):
        asm.li(3, scratch_base + 64 * index)
        asm.load(2, 3, 0)
    asm.fence()
    emit_gadget(asm, layout, cache)
    asm.annotate("target store")
    asm.li(6, store_value)
    asm.store(6, 1, 0, width=2)
    asm.li(8, 1)
    for index in range(backpressure_stores):
        asm.li(7, scratch_base + 64 * index)
        asm.store(8, 7, 0, width=2)
    asm.fence()
    asm.halt()
    return asm.assemble()
