"""Active replay attacks with width narrowing (Section IV-C4).

Silent stores, computation reuse and value prediction all "leak a
function of whether an instruction operand/result value equals another
value stored in either architectural or microarchitectural state."
With attacker-controlled comparison values and many experiments, each
experiment answers one equality query — and because the check is an
equality, narrower-width checks shrink the search exponentially:
learning 32 bits takes 2^32 tries in expectation at word width but only
4 x 2^8 at byte width.

:class:`SilentStoreWidthOracle` realizes the equality query on the
simulator via the amplification gadget with a store of the chosen
width; the search strategies below work against any equality oracle.
"""

from dataclasses import dataclass, field

from repro.attacks.amplification import GadgetLayout, emit_gadget, \
    flush_pointer_write
from repro.engine import (
    CacheSpec, HierarchySpec, PluginSpec, SimSpec, TaintSpec, run_spec,
)
from repro.isa.assembler import Assembler
from repro.pipeline.config import CPUConfig


@dataclass
class OracleStats:
    queries: int = 0
    timed_queries: int = 0
    queries_by_width: dict = field(default_factory=dict)


class SilentStoreWidthOracle:
    """Equality oracle over a secret word resident in data memory.

    ``query(guess, offset, width)`` asks: do ``width`` bytes of the
    secret at byte ``offset`` equal ``guess``?  In ``timed`` mode every
    query is an amplified silent-store measurement on the pipeline; in
    ``fast`` mode the equality is evaluated directly (it is exactly the
    check the hardware performs — ``timed`` and ``fast`` are asserted
    equivalent by the tests).
    """

    def __init__(self, secret, secret_width=4, mode="fast",
                 slot_addr=0x8000, delay_ptr_addr=0x4_0000,
                 flush_area_base=0x5_0000, result_cache=None):
        self.secret = secret & ((1 << (8 * secret_width)) - 1)
        self.secret_width = secret_width
        self.mode = mode
        self.slot_addr = slot_addr
        self.delay_ptr_addr = delay_ptr_addr
        self.flush_area_base = flush_area_base
        self.result_cache = result_cache
        self.stats = OracleStats()
        self._threshold = None

    # -- fast path ------------------------------------------------------

    def _equal(self, guess, offset, width):
        secret_part = (self.secret >> (8 * offset)) & ((1 << (8 * width)) - 1)
        return guess == secret_part

    # -- timed path --------------------------------------------------------

    def _measure_spec(self, guess, offset, width, secret_override=None):
        secret = self.secret if secret_override is None else secret_override
        l1_spec = CacheSpec(num_sets=64, ways=4)
        l1 = l1_spec.build()
        layout = GadgetLayout(target_addr=self.slot_addr + offset,
                              delay_ptr_addr=self.delay_ptr_addr,
                              flush_area_base=self.flush_area_base)
        asm = Assembler()
        asm.li(1, self.slot_addr + offset)
        asm.load(2, 1, 0)
        asm.fence()
        emit_gadget(asm, layout, l1)
        asm.li(6, guess)
        asm.store(6, 1, 0, width=width)
        asm.fence()
        asm.halt()
        return SimSpec(
            program=asm.assemble(),
            config=CPUConfig(store_queue_size=5),
            hierarchy=HierarchySpec(memory_size=1 << 20, l1=l1_spec),
            plugins=(PluginSpec.of("silent-stores"),),
            mem_writes=((self.slot_addr, secret, self.secret_width),
                        flush_pointer_write(layout, l1)),
            label=f"query/{offset}/{width}/{guess:#x}",
            taint=TaintSpec.of(
                secret=((self.slot_addr,
                         self.slot_addr + self.secret_width),)))

    def _measure(self, guess, offset, width, secret_override=None):
        spec = self._measure_spec(guess, offset, width,
                                  secret_override=secret_override)
        result = run_spec(spec, cache=self.result_cache)
        if not result.cached:
            self.stats.timed_queries += 1
        return result.cycles

    def _calibrate(self):
        silent = self._measure(0x11, 0, 1, secret_override=0x11)
        noisy = self._measure(0x12, 0, 1, secret_override=0x11)
        self._threshold = (silent + noisy) // 2

    def query(self, guess, offset=0, width=None):
        """One experiment.  Returns True iff the store would be silent."""
        if width is None:
            width = self.secret_width
        self.stats.queries += 1
        self.stats.queries_by_width[width] = (
            self.stats.queries_by_width.get(width, 0) + 1)
        if self.mode == "fast":
            return self._equal(guess, offset, width)
        if self._threshold is None:
            self._calibrate()
        return self._measure(guess, offset, width) < self._threshold


def full_width_search(oracle, width=None, order=None):
    """Enumerate full-width guesses: O(2^(8*width)) experiments.

    ``order`` optionally fixes the guess enumeration (defaults to
    0, 1, 2, ...).  Returns ``(value, tries)``.
    """
    if width is None:
        width = oracle.secret_width
    guesses = order if order is not None else range(1 << (8 * width))
    tries = 0
    for guess in guesses:
        tries += 1
        if oracle.query(guess, offset=0, width=width):
            return guess, tries
    return None, tries


def narrowing_search(oracle, width=None):
    """Byte-by-byte narrowing: at most ``width * 256`` experiments.

    This is the paper's observation that equality checks compose: the
    attacker checks one byte at a time with narrow stores.
    Returns ``(value, tries)``.
    """
    if width is None:
        width = oracle.secret_width
    value = 0
    tries = 0
    for offset in range(width):
        found = None
        for guess in range(256):
            tries += 1
            if oracle.query(guess, offset=offset, width=1):
                found = guess
                break
        if found is None:
            return None, tries
        value |= found << (8 * offset)
    return value, tries


def expected_tries(width_bytes, chunk_bytes):
    """Analytic expected experiment count (uniform secret)."""
    chunks = width_bytes // chunk_bytes
    per_chunk = (1 << (8 * chunk_bytes)) / 2
    return chunks * per_chunk
