"""Attack proofs-of-concept built on the simulator substrate."""

from repro.attacks.amplification import (
    GadgetLayout, build_timing_probe, emit_gadget, plant_flush_pointer,
)
from repro.attacks.bsaes_attack import (
    BSAESAttackConfig, BSAESSilentStoreAttack, BSAESVictimServer,
)
from repro.attacks.compsimp_attack import SignificanceProbe, ZeroSkipAttack
from repro.attacks.covert_channel import (
    FlushReloadReceiver, PrimeProbeReceiver,
)
from repro.attacks.dmp_attack import (
    DMPSandboxAttack, LeakResult, URGAttackConfig, build_attacker_program,
)
from repro.attacks.packing_attack import OperandPackingAttack
from repro.attacks.replay import (
    SilentStoreWidthOracle, expected_tries, full_width_search,
    narrowing_search,
)
from repro.attacks.reuse_attack import ComputationReuseAttack
from repro.attacks.rfc_attack import RegisterFileCompressionAttack
from repro.attacks.smt_attack import SMTContentionAttack, SMTPackingAttack
from repro.attacks.vp_attack import ValuePredictionAttack

__all__ = [
    "GadgetLayout", "build_timing_probe", "emit_gadget",
    "plant_flush_pointer", "BSAESAttackConfig", "BSAESSilentStoreAttack",
    "BSAESVictimServer", "SignificanceProbe", "ZeroSkipAttack",
    "FlushReloadReceiver", "PrimeProbeReceiver", "DMPSandboxAttack",
    "LeakResult", "URGAttackConfig", "build_attacker_program",
    "OperandPackingAttack", "SilentStoreWidthOracle", "expected_tries",
    "full_width_search", "narrowing_search", "ComputationReuseAttack",
    "RegisterFileCompressionAttack", "SMTContentionAttack",
    "SMTPackingAttack", "ValuePredictionAttack",
]
