"""Value-prediction attack (Section IV-C3/IV-C4).

The predictor's outcome — squash or no squash — is a function of
whether the resolved load value equals the table's prediction (Figure
3, Example 7).  The attack is symmetric, like branch-predictor attacks:
here the attacker *trains* the PC-indexed entry with a guess through
aliasing accesses, then the victim's load at the same (aliased) PC
either verifies the prediction (fast) or squashes (slow).

The PoC builds one program whose load PC first streams the attacker's
training value and finally the victim's secret: the run time reveals
whether ``secret == guess``, and 256 replays recover a secret byte.
"""

from dataclasses import dataclass

from repro.engine import (
    HierarchySpec, PluginSpec, SimSpec, TaintSpec, run_spec,
)
from repro.isa.assembler import Assembler

TRAIN_ADDR = 0x1000
SECRET_ADDR = 0x2000
TABLE_ADDR = 0x3000


def build_aliasing_program(iterations=8):
    """A loop whose single load PC reads attacker data, then the secret.

    The address comes from a pointer table ``TABLE_ADDR[i]``: entries
    0..iterations-2 point at the attacker's training cell, the last at
    the victim's secret.  A dependent multiply chain after the load
    gives mispredictions something to squash.
    """
    asm = Assembler()
    asm.li(1, TABLE_ADDR)
    asm.li(2, 0)
    asm.li(3, iterations)
    asm.li(9, 3)
    asm.label("loop")
    asm.slli(4, 2, 3)
    asm.add(4, 4, 1)
    asm.load(5, 4, 0)            # pointer
    asm.load(6, 5, 0)            # THE aliased load (trained PC)
    asm.mul(7, 6, 9)             # dependent work (squashed on mispredict)
    asm.mul(7, 7, 9)
    asm.mul(7, 7, 9)
    asm.mul(7, 7, 9)
    asm.addi(2, 2, 1)
    asm.blt(2, 3, "loop")
    asm.fence()
    asm.halt()
    return asm.assemble()


@dataclass
class VPAttackResult:
    guess: int
    cycles: int
    vp_squashes: int


class ValuePredictionAttack:
    """Per-guess measurement and byte recovery."""

    def __init__(self, secret_value, iterations=8, threshold=2):
        self.secret_value = secret_value
        self.iterations = iterations
        self.threshold = threshold
        self.program = build_aliasing_program(iterations)

    def measure_spec(self, guess):
        writes = [(TRAIN_ADDR, guess, 8),
                  (SECRET_ADDR, self.secret_value, 8)]
        for i in range(self.iterations - 1):
            writes.append((TABLE_ADDR + 8 * i, TRAIN_ADDR, 8))
        writes.append((TABLE_ADDR + 8 * (self.iterations - 1),
                       SECRET_ADDR, 8))
        return SimSpec(
            program=self.program,
            hierarchy=HierarchySpec(memory_size=1 << 16),
            plugins=(PluginSpec.of("value-prediction",
                                   threshold=self.threshold),),
            mem_writes=tuple(writes), label=f"guess={guess:#x}",
            taint=TaintSpec.of(
                secret=((SECRET_ADDR, SECRET_ADDR + 8),),
                public=((TRAIN_ADDR, TRAIN_ADDR + 8),
                        (TABLE_ADDR,
                         TABLE_ADDR + 8 * self.iterations))))

    def measure(self, guess):
        """One experiment: train with ``guess``, then victim load."""
        result = run_spec(self.measure_spec(guess))
        return VPAttackResult(guess=guess, cycles=result.cycles,
                              vp_squashes=result.stats["vp_squashes"])

    def calibrate(self):
        """Timing for a known non-matching guess vs a matching one."""
        match = self.measure(self.secret_value)
        mismatch_guess = (self.secret_value + 1) & 0xFF
        mismatch = self.measure(mismatch_guess)
        return match.cycles, mismatch.cycles

    def recover_byte(self, guesses=range(256)):
        """Replay over guesses; the fast run is the match.

        Returns ``(value_or_None, experiments)``.
        """
        match_cycles, mismatch_cycles = self.calibrate()
        if match_cycles >= mismatch_cycles:
            return None, 2
        threshold = (match_cycles + mismatch_cycles) // 2
        experiments = 0
        for guess in guesses:
            experiments += 1
            if self.measure(guess).cycles < threshold:
                return guess, experiments
        return None, experiments
