"""Register-file-compression attack (Section IV-D1).

RFC is memory-centric: it triggers as a function of the *values at rest
in the register file*, regardless of how they got there.  With a small
physical register file, a rename-pressure phase runs faster when the
preceding victim phase filled the register file with compressible
values (duplicates, or 0/1 for the 0/1 variant) — because compression
returned physical registers to the free pool.

The PoC leaks a classic constant-time sin: whether a victim's computed
flag bits are 0/1 (compressible) or random words.
"""

from dataclasses import dataclass

from repro.engine import (
    HierarchySpec, PluginSpec, SimSpec, TaintSpec, run_spec,
)
from repro.isa.assembler import Assembler
from repro.pipeline.config import CPUConfig

VICTIM_ADDR = 0x1000
COLD_ADDR = 0xC000


def build_pressure_program(victim_results=24, pressure_ops=56):
    """Victim phase fills the PRF; attacker phase stresses renaming.

    The victim computes ``victim_results`` register values that copy
    its secret word (flag-like data is 0/1 — compressible; random data
    is not).  The attacker phase then puts a cache-missing load at the
    head of the window and a burst of independent multiplies behind it:
    the load blocks commit, so physical registers stop recycling, and
    how much of the burst executes under the miss shadow depends on the
    rename headroom — i.e. on the compression credits the victim's
    values earned.
    """
    asm = Assembler()
    asm.li(1, VICTIM_ADDR)
    asm.load(2, 1, 0)            # the victim's secret word
    asm.fence()
    for index in range(victim_results):
        asm.add(3 + (index % 4), 2, 0)   # victim data lands in the PRF
    asm.li(9, 3)
    asm.li(8, 1)
    asm.li(7, COLD_ADDR)
    asm.load(6, 7, 0)            # miss: blocks commit, pins the window
    for index in range(pressure_ops):
        asm.mul(10 + (index % 8), 9, 8)   # independent producers
    asm.fence()
    asm.halt()
    return asm.assemble()


@dataclass
class RFCProbeResult:
    victim_value: int
    cycles: int
    pool_grants: int
    preg_stalls: int


class RegisterFileCompressionAttack:
    """Timing probe over the 0/1-compressibility of victim values."""

    def __init__(self, victim_results=24, pressure_ops=56,
                 num_phys_regs=48, variant="zero-one"):
        self.program = build_pressure_program(victim_results,
                                              pressure_ops)
        self.variant = variant
        # A single multiply unit makes the burst's execution time a
        # direct function of how many multiplies dispatched (and thus
        # executed) under the blocking load's miss shadow — which is
        # limited by rename headroom.
        self.config = CPUConfig(num_phys_regs=num_phys_regs,
                                rob_size=128, rs_size=96,
                                load_queue_size=32,
                                dispatch_width=4, fetch_width=4,
                                issue_width=4, commit_width=4,
                                num_mul_units=1, latency_mul=4)

    def measure_spec(self, victim_value):
        return SimSpec(
            program=self.program, config=self.config,
            hierarchy=HierarchySpec(memory_size=1 << 16),
            plugins=(PluginSpec.of("register-file-compression",
                                   variant=self.variant),),
            mem_writes=((VICTIM_ADDR, victim_value, 8),),
            label=f"victim={victim_value:#x}",
            taint=TaintSpec.of(secret=((VICTIM_ADDR,
                                        VICTIM_ADDR + 8),)))

    def measure(self, victim_value):
        result = run_spec(self.measure_spec(victim_value))
        rfc_stats = result.observations["plugins"][
            "register-file-compression"]
        return RFCProbeResult(
            victim_value=victim_value, cycles=result.cycles,
            pool_grants=rfc_stats["pool_grants"],
            preg_stalls=result.stats["dispatch_stalls"]["preg"])

    def classify_compressible(self, victim_value):
        """Was the victim's register-file content 0/1-compressible?

        Calibrated with attacker-known compressible (1) and
        incompressible (wide) values.
        """
        compressible = self.measure(1).cycles
        incompressible = self.measure(0xDEADBEEF).cycles
        victim = self.measure(victim_value).cycles
        threshold = (compressible + incompressible) // 2
        return victim < threshold
