"""End-to-end silent-store attack on Bitslice AES-128 (Section V-A3).

Cloud threat model: a server worker thread encrypts for multiple
tenants.  Stack temporaries are not cleared between calls ("as-provided
behavior of the victim program").  The victim encrypts known public
data with its secret key, leaving the final byte-substitution stage's
eight 16-bit bit-plane spills on the worker stack.  The attacker then
triggers encryptions with *its own* key and chosen plaintexts; the
store that re-writes a targeted stack slot is **silent** exactly when
the attacker's plane value equals the victim's leftover — and the
amplification gadget (Figure 5) turns that single store's silence into
a > 100-cycle end-to-end runtime difference (Figure 6).

Repeating over candidate plaintexts recovers each victim plane value
(up to 65,536 tries per 16-bit value, at most 8 × 65,536 = 524,288
oracle queries); the planes reconstruct the post-SubBytes state, the
known victim ciphertext gives the last round key, and the invertible
key schedule yields the full victim key.

The simulator configuration follows the paper's experiment: a 5-entry
store queue and a 4-way set-associative cache.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.amplification import GadgetLayout, emit_gadget, \
    flush_pointer_write
from repro.crypto.aes import encrypt_block
from repro.crypto.batch import batch_last_round_planes, random_plaintexts
from repro.crypto.bsaes import last_round_planes, recover_key_from_planes
from repro.engine import (
    CacheSpec, HierarchySpec, LatencySpec, PluginSpec, Session, SimSpec,
    SimStats, TaintSpec, derive_seed, run_batch,
)
from repro.isa.assembler import Assembler
from repro.memory.hierarchy import MemoryLatencies
from repro.pipeline.config import CPUConfig

NUM_SLOTS = 8


@dataclass
class BSAESAttackConfig:
    """Geometry of the simulated victim (paper: 5-entry SQ, 4-way cache).

    The eight 16-bit intermediates sit one cache line apart: the
    victim's (large) stack frame interleaves them with other spilled
    temporaries, as the x86 BSAES frame does.
    """

    store_queue_size: int = 5
    num_l1_sets: int = 64
    l1_ways: int = 4
    line_size: int = 64
    memory_size: int = 1 << 20
    stack_base: int = 0x8000
    slot_stride: int = 64
    delay_ptr_addr: int = 0x4_0000
    flush_area_base: int = 0x5_0000
    latencies: MemoryLatencies = field(default_factory=MemoryLatencies)

    def slot_addr(self, slot):
        return self.stack_base + self.slot_stride * slot


class BSAESVictimServer:
    """The victim side: secret key, public plaintext, stack leftovers."""

    def __init__(self, victim_key, public_plaintext):
        self.victim_key = bytes(victim_key)
        self.public_plaintext = bytes(public_plaintext)
        #: Observable by the attacker (the server returns ciphertexts).
        self.ciphertext = encrypt_block(victim_key, public_plaintext)
        #: Ground truth, used only by tests — never by the attack logic.
        self.leftover_planes = last_round_planes(victim_key,
                                                 public_plaintext)


class BSAESSilentStoreAttack:
    """Drives the oracle, the search, and the key reconstruction."""

    def __init__(self, server, attacker_key, config=None, seed=2021):
        self.server = server
        self.attacker_key = bytes(attacker_key)
        self.config = config if config is not None else BSAESAttackConfig()
        self.seed = seed
        self.timed_queries = 0
        self.last_cpu = None
        self.last_histogram_stats = None
        self._thresholds = {}

    # ------------------------------------------------------------------
    # the simulated encryption tail (spill stage + gadget)
    # ------------------------------------------------------------------

    def _build_program(self, planes, target_slot, cache):
        cfg = self.config
        layout = GadgetLayout(
            target_addr=cfg.slot_addr(target_slot),
            delay_ptr_addr=cfg.delay_ptr_addr,
            flush_area_base=cfg.flush_area_base)
        asm = Assembler()
        asm.li(1, cfg.stack_base)
        asm.annotate("warm the worker-stack slot lines")
        for slot in range(NUM_SLOTS):
            asm.load(2, 1, cfg.slot_stride * slot)
        asm.fence()
        for slot in range(target_slot):
            asm.li(3, planes[slot])
            asm.store(3, 1, cfg.slot_stride * slot, width=2)
        emit_gadget(asm, layout, cache)
        asm.annotate("target store: spills the attacked plane")
        asm.li(6, planes[target_slot])
        asm.store(6, 1, cfg.slot_stride * target_slot, width=2)
        for slot in range(target_slot + 1, NUM_SLOTS):
            asm.li(3, planes[slot])
            asm.store(3, 1, cfg.slot_stride * slot, width=2)
        asm.fence()
        asm.halt()
        return asm.assemble(), layout

    def measure_spec(self, attacker_planes, target_slot,
                     leftover_planes=None, label="", trial_seed=0):
        """One timed "encryption call" as a declarative engine spec.

        ``leftover_planes`` defaults to the victim's stack leftovers
        (the real attack); calibration passes attacker-known values.
        """
        cfg = self.config
        if leftover_planes is None:
            leftover_planes = self.server.leftover_planes
        l1_spec = CacheSpec(num_sets=cfg.num_l1_sets, ways=cfg.l1_ways,
                            line_size=cfg.line_size)
        l1 = l1_spec.build()
        program, layout = self._build_program(
            [int(p) for p in attacker_planes], target_slot, l1)
        mem_writes = [(cfg.slot_addr(slot), int(leftover_planes[slot]), 2)
                      for slot in range(NUM_SLOTS)]
        mem_writes.append(flush_pointer_write(layout, l1))
        return SimSpec(
            program=program,
            config=CPUConfig(store_queue_size=cfg.store_queue_size),
            hierarchy=HierarchySpec(
                memory_size=cfg.memory_size, l1=l1_spec,
                latencies=LatencySpec.from_latencies(cfg.latencies)),
            plugins=(PluginSpec.of("silent-stores"),),
            mem_writes=tuple(mem_writes), seed=trial_seed, label=label,
            taint=TaintSpec.of(
                secret=tuple((cfg.slot_addr(slot),
                              cfg.slot_addr(slot) + 2)
                             for slot in range(NUM_SLOTS))))

    def measure(self, attacker_planes, target_slot,
                leftover_planes=None):
        """One timed "encryption call": returns total cycles."""
        # Successive timed calls see fresh (but reproducible) DRAM
        # jitter, as successive encryptions on a real machine would.
        trial_seed = (derive_seed(self.seed, self.timed_queries)
                      if self.config.latencies.jitter else 0)
        session = Session.from_spec(self.measure_spec(
            attacker_planes, target_slot, leftover_planes,
            trial_seed=trial_seed))
        result = session.run()
        self.timed_queries += 1
        self.last_cpu = session.cpu
        return result.cycles

    # ------------------------------------------------------------------
    # oracle
    # ------------------------------------------------------------------

    def calibrate(self, target_slot):
        """Attacker self-calibration: it encrypts twice with leftovers it
        *knows* (its own previous call), once matching and once not,
        and places the threshold at the midpoint."""
        reference = [(37 * (slot + 3)) & 0xFFFF
                     for slot in range(NUM_SLOTS)]
        silent_cycles = self.measure(reference, target_slot,
                                     leftover_planes=reference)
        mismatched = list(reference)
        mismatched[target_slot] ^= 0x1
        noisy_cycles = self.measure(mismatched, target_slot,
                                    leftover_planes=reference)
        threshold = (silent_cycles + noisy_cycles) // 2
        self._thresholds[target_slot] = threshold
        return silent_cycles, noisy_cycles, threshold

    def timed_oracle(self, attacker_planes, target_slot):
        """True iff the targeted store was silent, judged by timing."""
        if target_slot not in self._thresholds:
            self.calibrate(target_slot)
        cycles = self.measure(attacker_planes, target_slot)
        return cycles < self._thresholds[target_slot]

    def functional_oracle(self, attacker_planes, target_slot):
        """The hardware equality check itself (what timing measures)."""
        return (int(attacker_planes[target_slot])
                == self.server.leftover_planes[target_slot])

    # ------------------------------------------------------------------
    # search and reconstruction
    # ------------------------------------------------------------------

    def recover_plane(self, target_slot, oracle="functional",
                      max_tries=1 << 18, batch_size=8192):
        """Search candidate plaintexts until the target store is silent.

        Returns ``(plane_value, tries)`` or ``(None, tries)`` when the
        budget is exhausted.  Each candidate costs one oracle query
        (one encryption request against the server).
        """
        check = (self.functional_oracle if oracle == "functional"
                 else self.timed_oracle)
        tries = 0
        offset = 0
        tried_values = set()
        # The attacker knows its own plane value before sending a
        # request, so it never wastes an oracle query on a repeat —
        # this is what makes the paper's "up to 65,536 possibilities"
        # per 16-bit value a hard bound.
        while tries < max_tries and len(tried_values) < (1 << 16):
            plaintexts = random_plaintexts(
                batch_size, seed=(self.seed, target_slot, offset))
            planes = batch_last_round_planes(self.attacker_key,
                                             plaintexts)
            for row in planes:
                value = int(row[target_slot])
                if value in tried_values:
                    continue
                tried_values.add(value)
                tries += 1
                if check(row, target_slot):
                    return value, tries
                if tries >= max_tries:
                    break
            offset += 1
        return None, tries

    def recover_key(self, oracle="functional", max_tries=1 << 18):
        """Recover all eight planes, then the victim key.

        Returns ``(key_or_None, per_slot_tries)``.
        """
        planes = []
        per_slot_tries = []
        for slot in range(NUM_SLOTS):
            value, tries = self.recover_plane(slot, oracle=oracle,
                                              max_tries=max_tries)
            per_slot_tries.append(tries)
            if value is None:
                return None, per_slot_tries
            planes.append(value)
        key = recover_key_from_planes(planes, self.server.ciphertext)
        return key, per_slot_tries

    def confirm_planes_timed(self, planes):
        """Validate recovered planes through the *timing* channel: each
        matching plane must time as silent, and a perturbed value as
        non-silent.  Returns the number of confirmed slots."""
        confirmed = 0
        for slot in range(NUM_SLOTS):
            match = list(planes)
            if not self.timed_oracle(match, slot):
                continue
            perturbed = list(planes)
            perturbed[slot] ^= 0x8001
            if self.timed_oracle(perturbed, slot):
                continue
            confirmed += 1
        return confirmed

    # ------------------------------------------------------------------
    # Figure 6: the runtime histogram
    # ------------------------------------------------------------------

    def histogram_specs(self, runs_per_type=30, target_slot=4, seed=7):
        """The Figure 6 trial batch as engine specs (label: guess type).

        Non-target slots vary across runs, as they would across real
        encryption calls.
        """
        rng = np.random.default_rng(seed)
        victim = self.server.leftover_planes
        jitter = bool(self.config.latencies.jitter)
        specs = []
        for run in range(runs_per_type):
            noise = rng.integers(0, 1 << 16, size=NUM_SLOTS)
            correct = list(noise)
            correct[target_slot] = victim[target_slot]
            specs.append(self.measure_spec(
                correct, target_slot, label=f"correct/{run}",
                trial_seed=derive_seed(seed, 2 * run) if jitter else 0))
            incorrect = list(noise)
            incorrect[target_slot] = victim[target_slot] ^ int(
                rng.integers(1, 1 << 16))
            specs.append(self.measure_spec(
                incorrect, target_slot, label=f"incorrect/{run}",
                trial_seed=(derive_seed(seed, 2 * run + 1)
                            if jitter else 0)))
        return specs

    def histogram_runs(self, runs_per_type=30, target_slot=4, seed=7,
                       workers=1, cache=None, batch_stats=None):
        """Timed runs for correct vs incorrect guesses (Figure 6).

        Returns ``{"correct": [cycles...], "incorrect": [cycles...]}``.
        The trials are independent replays, so ``workers > 1`` fans
        them across processes with identical aggregated results.

        ``batch_stats`` receives the engine's scheduling telemetry (see
        :func:`repro.engine.run_batch`).  The per-guess-type simulator
        metrics, merged across trials, land in
        :attr:`last_histogram_stats` as ``{"correct": ..., "incorrect":
        ...}`` ``as_dict`` payloads — the Figure 6 bench persists them
        so the amplification mechanism (store-queue head-of-line stall
        cycles) is auditable from the results JSON.
        """
        specs = self.histogram_specs(runs_per_type=runs_per_type,
                                     target_slot=target_slot, seed=seed)
        outcomes = run_batch(specs, workers=workers, cache=cache,
                             batch_stats=batch_stats)
        self.timed_queries += len(outcomes)
        results = {"correct": [], "incorrect": []}
        merged = {"correct": SimStats(), "incorrect": SimStats()}
        for spec, outcome in zip(specs, outcomes):
            kind = spec.label.split("/")[0]
            results[kind].append(outcome.cycles)
            merged[kind].merge(outcome.metrics)
        self.last_histogram_stats = {
            kind: record.as_dict() for kind, record in merged.items()}
        return results
