"""SMT-sibling attacks (Sections IV-B3 and VI-B).

Two receivers running as the victim's hardware-thread sibling:

* **Operand-packing receiver** — the paper's IV-B3 scenario verbatim:
  the attacker issues narrow-operand ALU ops every cycle; whether they
  pack (and so how fast the attacker's own loop runs) depends strictly
  on the *victim's* operand widths.
* **Execution-unit contention receiver** — the attacker times its own
  divide stream; the victim's secret-dependent divide usage (e.g. via
  zero-skip or strength-reduction-style simplification) modulates the
  shared non-pipelined unit.  This is the port-contention channel the
  paper connects to strength reduction in Section VI-B.

The attacker measures nothing about the victim directly — only its own
runtime, as a real SMT receiver would.
"""

from dataclasses import dataclass

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.computation_simplification import (
    ComputationSimplificationPlugin,
)
from repro.optimizations.pipeline_compression import OperandPackingPlugin
from repro.pipeline.config import CPUConfig
from repro.pipeline.smt import SMTCore

VICTIM_ADDR = 0x1000


def victim_alu_loop(iterations=24):
    """The victim: a dense stream of ALU work on a (secret) operand —
    it holds the shared ALU port on its priority cycles."""
    asm = Assembler()
    asm.li(1, VICTIM_ADDR)
    asm.load(2, 1, 0)
    asm.fence()
    asm.li(3, 0)
    asm.li(4, iterations)
    asm.label("loop")
    for scratch in range(5, 13):
        asm.add(scratch, 2, 2)      # independent secret-operand ops
    asm.addi(3, 3, 1)
    asm.blt(3, 4, "loop")
    asm.halt()
    return asm.assemble()


def attacker_alu_loop(chain_length=160):
    """The receiver: one long *dependent* chain of narrow adds.

    Exactly one of its ops is ready per cycle, so its throughput is
    1/cycle only if that op can issue every cycle — on victim-priority
    cycles that requires packing into the victim's slot, which the
    hardware allows iff the victim's operands are narrow too."""
    asm = Assembler()
    asm.li(1, 1)             # deliberately narrow
    asm.li(5, 1)
    for _ in range(chain_length):
        asm.add(5, 5, 1)     # dependent, stays narrow
    asm.halt()
    return asm.assemble()


def victim_div_loop(iterations=24):
    """A victim whose divide work collapses when its operand is zero
    (the zero-over-anything simplification)."""
    asm = Assembler()
    asm.li(1, VICTIM_ADDR)
    asm.load(2, 1, 0)
    asm.fence()
    asm.li(7, 9)
    asm.li(3, 0)
    asm.li(4, iterations)
    asm.label("loop")
    asm.div(5, 2, 7)
    asm.addi(3, 3, 1)
    asm.blt(3, 4, "loop")
    asm.halt()
    return asm.assemble()


def attacker_div_loop(iterations=24):
    asm = Assembler()
    asm.li(1, 1000)
    asm.li(2, 7)
    asm.li(3, 0)
    asm.li(4, iterations)
    asm.label("loop")
    asm.div(5, 1, 2)
    asm.addi(1, 5, 3)        # dependent: keeps the stream honest
    asm.addi(3, 3, 1)
    asm.blt(3, 4, "loop")
    asm.halt()
    return asm.assemble()


@dataclass
class SMTProbeResult:
    victim_value: int
    attacker_cycles: int
    victim_cycles: int


class SMTPackingAttack:
    """IV-B3: the sibling's throughput reveals the victim's widths."""

    def __init__(self, iterations=24, chain_length=160):
        self.victim_program = victim_alu_loop(iterations)
        self.attacker_program = attacker_alu_loop(chain_length)
        self.config = CPUConfig(num_alu_ports=1, issue_width=4,
                                dispatch_width=4, fetch_width=4,
                                commit_width=4)

    def measure(self, victim_value):
        memory = FlatMemory(1 << 16)
        memory.write(VICTIM_ADDR, victim_value)
        hierarchy = MemoryHierarchy(memory, l1=Cache())
        packing = OperandPackingPlugin()
        core = SMTCore(self.victim_program, self.attacker_program,
                       hierarchy, config_a=self.config,
                       config_b=self.config,
                       plugins_a=[packing], plugins_b=[packing])
        stats_a, stats_b = core.run()
        return SMTProbeResult(victim_value=victim_value,
                              attacker_cycles=stats_b.cycles,
                              victim_cycles=stats_a.cycles)

    def victim_operand_is_narrow(self, victim_value):
        """Calibrated, attacker-runtime-only classification."""
        narrow_ref = self.measure(5).attacker_cycles
        wide_ref = self.measure(1 << 30).attacker_cycles
        victim = self.measure(victim_value).attacker_cycles
        return victim < (narrow_ref + wide_ref) // 2


class SMTContentionAttack:
    """Unit-contention receiver against simplified victim divides."""

    def __init__(self, iterations=24):
        self.victim_program = victim_div_loop(iterations)
        self.attacker_program = attacker_div_loop(iterations)
        self.config = CPUConfig(num_div_units=1, latency_div=20)

    def measure(self, victim_value):
        memory = FlatMemory(1 << 16)
        memory.write(VICTIM_ADDR, victim_value)
        hierarchy = MemoryHierarchy(memory, l1=Cache())
        simplifier = ComputationSimplificationPlugin(
            rules=("zero_over_anything_div",))
        core = SMTCore(self.victim_program, self.attacker_program,
                       hierarchy, config_a=self.config,
                       config_b=self.config,
                       plugins_a=[simplifier])
        stats_a, stats_b = core.run()
        return SMTProbeResult(victim_value=victim_value,
                              attacker_cycles=stats_b.cycles,
                              victim_cycles=stats_a.cycles)

    def victim_operand_is_zero(self, victim_value):
        zero_ref = self.measure(0).attacker_cycles
        nonzero_ref = self.measure(1).attacker_cycles
        victim = self.measure(victim_value).attacker_cycles
        return abs(victim - zero_ref) < abs(victim - nonzero_ref)
