"""Computation-simplification attacks (Sections IV-A2, IV-B).

Two probes:

* **Zero-skip multiply** — the paper's running example.  The active
  variant sets the attacker-controlled operand non-zero, so the skip
  fires precisely when the *private* operand is zero (Section IV-A2's
  lattice analysis); with the attacker operand zero, the outcome is a
  function of public information only, and nothing leaks.
* **Early-terminating multiply** — latency tracks operand significance,
  so timing reveals ``msb``-range information about a private operand
  (the digit-serial channel behind the constant-time breaks of [38]).
"""

from dataclasses import dataclass

from repro.engine import (
    HierarchySpec, PluginSpec, SimSpec, TaintSpec, run_spec,
)
from repro.isa.assembler import Assembler
from repro.pipeline.config import CPUConfig

SECRET_ADDR = 0x1000
CONTROLLED_ADDR = 0x2000


def build_multiply_chain(length=32):
    """``length`` dependent multiplies of (secret, controlled)."""
    asm = Assembler()
    asm.li(1, SECRET_ADDR)
    asm.load(2, 1, 0)            # private operand
    asm.li(3, CONTROLLED_ADDR)
    asm.load(4, 3, 0)            # attacker-controlled operand
    asm.fence()
    asm.mv(5, 4)
    for _ in range(length):
        asm.mul(6, 2, 5)         # secret x controlled-derived
        asm.or_(5, 5, 4)         # keep the chain dependent, value stable
    asm.fence()
    asm.halt()
    return asm.assemble()


@dataclass
class ZeroSkipProbeResult:
    secret: int
    controlled: int
    cycles: int


class ZeroSkipAttack:
    """Active attack on the zero-skip multiplier."""

    def __init__(self, chain_length=32, mul_latency=6):
        self.program = build_multiply_chain(chain_length)
        self.config = CPUConfig(latency_mul=mul_latency)

    def measure_spec(self, secret, controlled):
        return SimSpec(
            program=self.program, config=self.config,
            hierarchy=HierarchySpec(memory_size=1 << 16),
            plugins=(PluginSpec.of("computation-simplification",
                                   rules=("zero_skip_mul",)),),
            mem_writes=((SECRET_ADDR, secret, 8),
                        (CONTROLLED_ADDR, controlled, 8)),
            taint=TaintSpec.of(
                secret=((SECRET_ADDR, SECRET_ADDR + 8),),
                public=((CONTROLLED_ADDR, CONTROLLED_ADDR + 8),)))

    def measure(self, secret, controlled):
        result = run_spec(self.measure_spec(secret, controlled))
        return ZeroSkipProbeResult(secret=secret, controlled=controlled,
                                   cycles=result.cycles)

    def secret_is_zero(self, secret, controlled=1):
        """With a non-zero controlled operand, the skip keys on the
        secret alone.  Calibrated with attacker-known runs."""
        zero_ref = self.measure(0, controlled).cycles
        nonzero_ref = self.measure(1, controlled).cycles
        victim = self.measure(secret, controlled).cycles
        threshold = (zero_ref + nonzero_ref) // 2
        return victim < threshold

    def leaks_with_zero_controlled(self, secrets, controlled=0):
        """Sanity check of the lattice analysis: with the public operand
        zero, timing is identical for every secret (no leak)."""
        cycles = {self.measure(s, controlled).cycles for s in secrets}
        return len(cycles) == 1


class SignificanceProbe:
    """Early-terminating multiplier: timing orders operand significance."""

    def __init__(self, chain_length=32, mul_latency=8, digit_bytes=1):
        self.program = build_multiply_chain(chain_length)
        self.config = CPUConfig(latency_mul=mul_latency)
        self.digit_bytes = digit_bytes

    def measure(self, secret, controlled):
        spec = SimSpec(
            program=self.program, config=self.config,
            hierarchy=HierarchySpec(memory_size=1 << 16),
            plugins=(PluginSpec.of("early-terminating-multiplier",
                                   digit_bytes=self.digit_bytes),),
            # Multiplier order swapped: rs2 drives termination.
            mem_writes=((SECRET_ADDR, controlled, 8),
                        (CONTROLLED_ADDR, secret, 8)),
            taint=TaintSpec.of(
                secret=((CONTROLLED_ADDR, CONTROLLED_ADDR + 8),),
                public=((SECRET_ADDR, SECRET_ADDR + 8),)))
        return run_spec(spec).cycles

    def significance_curve(self, byte_widths=(1, 2, 3, 4, 5, 6)):
        """Cycles as a function of the secret's significant bytes."""
        curve = {}
        for width in byte_widths:
            secret = (1 << (8 * width - 1)) | 1
            curve[width] = self.measure(secret, 3)
        return curve
