"""Reproduction of *Opening Pandora's Box* (ISCA 2021).

A systematic study of microarchitectural optimizations with novel
privacy implications, rebuilt as a Python library:

* :mod:`repro.core` — the paper's primary contribution: the
  microarchitectural-leakage-descriptor (MLD) framework, the leakage
  landscape (Table I), the classification by MLD signature (Table II),
  the security lattice, and the universal-read-gadget analysis.
* :mod:`repro.isa`, :mod:`repro.memory`, :mod:`repro.pipeline` — the
  substrate: a RISC-like ISA, caches, and a cycle-level out-of-order
  core with pluggable optimizations.
* :mod:`repro.optimizations` — the seven studied optimization classes
  as pipeline plug-ins.
* :mod:`repro.sandbox` — an eBPF-like sandbox (bytecode, verifier, JIT).
* :mod:`repro.crypto` — AES-128 and the bitsliced constant-time victim.
* :mod:`repro.attacks` — the proofs-of-concept: the silent-store
  amplification gadget and BSAES key recovery (Figures 4–6), the
  3-level-IMP universal read gadget in the sandbox (Figures 1 and 7),
  and replay attacks on the remaining optimization classes.
* :mod:`repro.analysis` — histograms and distinguishability metrics.

Quickstart::

    from repro.core import render_table
    print(render_table())          # Table I, derived from the registry

    from repro.attacks import DMPSandboxAttack
    attack = DMPSandboxAttack()
    attack.runtime.place_kernel_secret(0x10_0000, b"secret")
    print(attack.leak_byte(0x10_0000).leaked_byte)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis", "attacks", "core", "crypto", "isa", "memory",
    "optimizations", "pipeline", "sandbox",
]
