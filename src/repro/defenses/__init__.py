"""Retrofitted software mitigations for the studied channels (VI-A2)."""

from repro.defenses.retrofits import (
    SpillMasker, clear_slots, pad_significance, strip_significance_pad,
)

__all__ = [
    "SpillMasker", "clear_slots", "pad_significance",
    "strip_significance_pad",
]
