"""Retrofitted constant-time mitigations (Section VI-A2).

The paper sketches software retrofits for the new channels and asks
whether they restore security (and at what cost).  Implemented here:

* **Targeted clearing** — zero the sensitive stack slots between calls,
  so a later silent-store candidacy check compares against a public
  constant ("it may be sufficient to clear data memory in a targeted
  fashion").
* **Spill masking** — XOR every value spilled to memory with a
  per-call secret pad, so memory never holds a value an attacker could
  collide with ("one can encrypt all data that is spilled from the
  register file/written to data memory").
* **Significance padding** — OR a 1 into the most-significant bit
  position of each word before arithmetic, defeating
  significance-compression channels (operand packing, early-terminating
  multiplication) at the cost of changed values — usable only where an
  algorithm can compensate, which is exactly the brittleness the paper
  calls out.

Each mitigation is demonstrated (and its cost measured) in
``benchmarks/bench_defense_retrofits.py``.
"""

from repro.isa.bits import WORD_MASK


def clear_slots(memory, slot_addresses, width=2):
    """Targeted clearing: zero the listed stack slots.

    The victim runs this between encryption calls.  Subsequent
    silent-store equality checks compare attacker data against the
    public constant 0, so silence reveals only whether the attacker's
    own value is zero — nothing about the previous tenant.
    """
    for addr in slot_addresses:
        memory.write(addr, 0, width)


class SpillMasker:
    """Per-call XOR masking of spilled values.

    ``mask_value`` is applied before a value is written to memory and
    after it is read back; the pad is fresh secret-per-call state, so
    an attacker cannot choose data that collides with the masked spill.
    """

    def __init__(self, pad):
        self.pad = pad & WORD_MASK

    def mask_value(self, value, width=8):
        return (value ^ self.pad) & ((1 << (8 * width)) - 1)

    def unmask_value(self, value, width=8):
        return self.mask_value(value, width)  # XOR is its own inverse

    def spill(self, memory, addr, value, width=8):
        memory.write(addr, self.mask_value(value, width), width)

    def reload(self, memory, addr, width=8):
        return self.unmask_value(memory.read(addr, width), width)


def pad_significance(value, bits=64):
    """OR a 1 into the most-significant bit position (Section VI-A2).

    Makes every operand read as full-width to significance-keyed
    hardware.  The caller must be able to strip the bit afterwards —
    "assuming this can be done while preserving functionality".
    """
    return (value | (1 << (bits - 1))) & WORD_MASK


def strip_significance_pad(value, bits=64):
    """Remove the pad bit inserted by :func:`pad_significance`."""
    return value & ~(1 << (bits - 1)) & WORD_MASK
