"""Table I — the leakage landscape.

Regenerates the paper's Table I from the optimization registry and
checks it cell-for-cell, plus the two Section III claims (every
optimization expands leakage; the union leaves nothing safe).
"""

from conftest import emit

from repro.core.landscape import (
    expansions, generate_table_i, render_table, union_safety,
)
from repro.core.registry import COLUMN_ORDER, UNSAFE


def test_table1_landscape(benchmark):
    table = benchmark(generate_table_i)
    text = render_table(table)
    lines = [text, "", "Leakage expansions vs Baseline:"]
    for acronym in COLUMN_ORDER:
        changes = expansions(acronym)
        rendered = ", ".join(f"{'/'.join(row)} ({how})"
                             for row, how in changes)
        lines.append(f"  {acronym:4s} {rendered}")
    union = union_safety()
    lines.append("")
    lines.append(f"Union-of-optimizations safe rows: "
                 f"{sum(1 for m in union.values() if m != UNSAFE)} / "
                 f"{len(union)}")
    emit("table1_landscape", "\n".join(lines))

    # Shape assertions (paper: Table I + Section III).
    assert all(marker == UNSAFE for marker in union.values())
    for acronym in COLUMN_ORDER:
        assert expansions(acronym)
