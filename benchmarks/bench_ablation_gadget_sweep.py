"""Ablation — amplification-gadget sensitivity.

Sweeps the two design parameters DESIGN.md calls out:

* memory (miss) latency — the gadget's timing gap must track it, since
  the non-silent store pays exactly one extra memory round trip;
* store-queue size — head-of-line blocking needs the SQ to fill; the
  gap persists across sizes because the end-of-program drain (fence)
  already serializes on the store, with backpressure adding on top.

The whole grid is one engine batch: every (latency, SQ, match) point
is a spec, and repeat invocations hit the persistent result cache.
"""

from conftest import emit, emit_json

from repro.attacks.amplification import amplified_probe_spec
from repro.engine import run_batch

SECRET = 0x1234
LATENCIES = (60, 120, 240, 480)
SQ_SIZES = (2, 5, 8, 16)


def run_sweeps(cache=None):
    specs = []
    for latency in LATENCIES:
        for matches in (False, True):
            specs.append(amplified_probe_spec(
                SECRET, SECRET if matches else 0x4321,
                mem_latency=latency,
                label=f"lat/{latency}/{int(matches)}"))
    for sq_size in SQ_SIZES:
        for matches in (False, True):
            specs.append(amplified_probe_spec(
                SECRET, SECRET if matches else 0x4321,
                store_queue_size=sq_size,
                label=f"sq/{sq_size}/{int(matches)}"))
    cycles = {result.label: result.cycles
              for result in run_batch(specs, cache=cache)}
    latency_sweep = {
        latency: cycles[f"lat/{latency}/0"] - cycles[f"lat/{latency}/1"]
        for latency in LATENCIES}
    sq_sweep = {
        sq_size: cycles[f"sq/{sq_size}/0"] - cycles[f"sq/{sq_size}/1"]
        for sq_size in SQ_SIZES}
    return latency_sweep, sq_sweep


def test_ablation_gadget_sweep(once, results_cache):
    latency_sweep, sq_sweep = once(run_sweeps, results_cache)
    lines = ["memory latency sweep (SQ=5):",
             f"  {'latency':>8s} {'gap':>6s}"]
    for latency, gap in latency_sweep.items():
        lines.append(f"  {latency:8d} {gap:6d}")
    lines += ["", "store-queue size sweep (latency=120):",
              f"  {'SQ size':>8s} {'gap':>6s}"]
    for sq_size, gap in sq_sweep.items():
        lines.append(f"  {sq_size:8d} {gap:6d}")
    emit("ablation_gadget_sweep", "\n".join(lines))
    emit_json("ablation_gadget_sweep",
              {"latency_sweep": {str(k): v
                                 for k, v in latency_sweep.items()},
               "sq_sweep": {str(k): v for k, v in sq_sweep.items()}})

    # The gap tracks the miss latency ~1:1.
    for (l1_, g1), (l2_, g2) in zip(latency_sweep.items(),
                                    list(latency_sweep.items())[1:]):
        assert g2 > g1                       # monotone
        assert abs((g2 - g1) - (l2_ - l1_)) <= 16  # ~unit slope
    # The gap exceeds 100 cycles at every SQ size (paper's figure
    # used 5 entries).
    assert all(gap > 100 for gap in sq_sweep.values())
