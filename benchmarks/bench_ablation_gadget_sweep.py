"""Ablation — amplification-gadget sensitivity.

Sweeps the two design parameters DESIGN.md calls out:

* memory (miss) latency — the gadget's timing gap must track it, since
  the non-silent store pays exactly one extra memory round trip;
* store-queue size — head-of-line blocking needs the SQ to fill; the
  gap persists across sizes because the end-of-program drain (fence)
  already serializes on the store, with backpressure adding on top.
"""

from conftest import emit

from repro.attacks.amplification import (
    GadgetLayout, build_timing_probe, plant_flush_pointer,
)
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy, MemoryLatencies
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def measure(matches, mem_latency=120, sq_size=5):
    memory = FlatMemory(1 << 20)
    memory.write(0x8000, 0x1234, 2)
    l1 = Cache(num_sets=64, ways=4)
    hierarchy = MemoryHierarchy(
        memory, l1=l1, latencies=MemoryLatencies(memory=mem_latency))
    layout = GadgetLayout(target_addr=0x8000, delay_ptr_addr=0x4_0000,
                          flush_area_base=0x5_0000)
    plant_flush_pointer(memory, layout, l1)
    program = build_timing_probe(layout, l1,
                                 0x1234 if matches else 0x4321)
    cpu = CPU(program, hierarchy,
              config=CPUConfig(store_queue_size=sq_size),
              plugins=[SilentStorePlugin()])
    cpu.run()
    return cpu.stats.cycles


def run_sweeps():
    latency_sweep = {}
    for latency in (60, 120, 240, 480):
        gap = measure(False, mem_latency=latency) - \
            measure(True, mem_latency=latency)
        latency_sweep[latency] = gap
    sq_sweep = {}
    for sq_size in (2, 5, 8, 16):
        gap = measure(False, sq_size=sq_size) - \
            measure(True, sq_size=sq_size)
        sq_sweep[sq_size] = gap
    return latency_sweep, sq_sweep


def test_ablation_gadget_sweep(once):
    latency_sweep, sq_sweep = once(run_sweeps)
    lines = ["memory latency sweep (SQ=5):",
             f"  {'latency':>8s} {'gap':>6s}"]
    for latency, gap in latency_sweep.items():
        lines.append(f"  {latency:8d} {gap:6d}")
    lines += ["", "store-queue size sweep (latency=120):",
              f"  {'SQ size':>8s} {'gap':>6s}"]
    for sq_size, gap in sq_sweep.items():
        lines.append(f"  {sq_size:8d} {gap:6d}")
    emit("ablation_gadget_sweep", "\n".join(lines))

    # The gap tracks the miss latency ~1:1.
    gaps = list(latency_sweep.values())
    latencies = list(latency_sweep.keys())
    for (l1_, g1), (l2_, g2) in zip(latency_sweep.items(),
                                    list(latency_sweep.items())[1:]):
        assert g2 > g1                       # monotone
        assert abs((g2 - g1) - (l2_ - l1_)) <= 16  # ~unit slope
    # The gap exceeds 100 cycles at every SQ size (paper's figure
    # used 5 entries).
    assert all(gap > 100 for gap in sq_sweep.values())
