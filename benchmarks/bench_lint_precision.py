"""Static-lint precision — false-positive rates and analysis cost.

The precision harness (``python -m repro precision``) is the dual of
the soundness gate: it classifies every static LEAKS flag over the
bounded corpus by secret-pair differential trial.  This bench runs
the full classification and checks the layer's contracts:

* zero soundness escapes — every confirmed divergence was statically
  flagged (by both the path-sensitive analysis and the sticky
  baseline it over-approximates);
* path sensitivity *strictly* reduces false positives on the corpus
  (the gated public-tail cases are the separating instances);
* the pure static pass stays cheap — post-dominator scoping and the
  feasibility fixpoint must not make linting a bottleneck next to
  the differential trials they are measured by.
"""

import time

from conftest import emit, emit_json

from repro.lint.checker import lint_program
from repro.lint.precision import check_precision
from repro.lint.progen import CaseGenerator

BUDGET = 4
SEED = 0
STATIC_REPEATS = 50


def run_precision():
    start = time.perf_counter()
    report = check_precision(budget=BUDGET, seed=SEED)
    elapsed = time.perf_counter() - start
    row = report.to_json_dict()
    row.pop("outcomes")
    row["elapsed_s"] = elapsed
    row["trials"] = len(report.outcomes)
    row["removed"] = (report.sticky_false_positives
                      - report.false_positives)
    return row


def run_static_cost():
    """Scoped vs sticky lint cost over one progen corpus."""
    cases = CaseGenerator(seed=SEED).cases_for("silent-stores", BUDGET)
    timings = {}
    for path_sensitive in (True, False):
        start = time.perf_counter()
        for _ in range(STATIC_REPEATS):
            for case in cases:
                lint_program(case.program, opts=("silent-stores",),
                             path_sensitive=path_sensitive)
        timings[path_sensitive] = time.perf_counter() - start
    lints = STATIC_REPEATS * len(cases)
    return {
        "lints": lints,
        "scoped_s": timings[True],
        "sticky_s": timings[False],
        "scoped_us_per_lint": 1e6 * timings[True] / lints,
        "overhead_x": timings[True] / max(timings[False], 1e-9),
    }


def test_lint_precision(once):
    row = once(run_precision)
    lines = [
        f"lint precision: budget={row['budget']} seed={row['seed']} "
        f"({row['trials']} trials, {row['elapsed_s']:.2f} s)",
        f"  confirmed:          {row['confirmed']:4d}",
        f"  FP path-sensitive:  {row['false_positives']:4d}",
        f"  FP sticky baseline: {row['sticky_false_positives']:4d}",
        f"  removed by scoping: {row['removed']:4d}",
        f"  soundness escapes:  {row['missed']:4d}",
    ]
    emit("lint_precision", "\n".join(lines))
    emit_json("lint_precision", row)

    assert row["ok"]
    assert row["missed"] == 0
    assert row["false_positives"] < row["sticky_false_positives"]
    # Interactive budget: the CI static-checks leg runs this on push.
    assert row["elapsed_s"] < 120.0


def test_static_analysis_cost(once):
    row = once(run_static_cost)
    emit("lint_precision_static_cost",
         f"static lint cost over {row['lints']} lints:\n"
         f"  path-sensitive: {row['scoped_s']:8.3f} s "
         f"({row['scoped_us_per_lint']:8.1f} us/lint)\n"
         f"  sticky:         {row['sticky_s']:8.3f} s\n"
         f"  overhead:       {row['overhead_x']:8.2f}x")
    emit_json("lint_precision_static_cost", row)

    # Post-dominator scoping + the feasibility fixpoint may cost a
    # constant factor over the sticky pass, but must stay the same
    # order of magnitude — linting is the cheap half of the harness.
    assert row["overhead_x"] < 25.0
