"""Overhead of the repro.stats layer on the Figure 6 workload.

The stats subsystem is always compiled in; a run opts out per-spec via
``collect_stats=False``, which swaps the record for the no-op
``NULL_STATS`` singleton and lets the hot per-cycle paths skip
recording behind a single ``enabled`` check.  This bench times the
Figure 6 trial workload in both modes, interleaved to cancel thermal /
scheduling drift, and asserts the disabled mode pays (at most) noise:
its best-of run must be within 5% of the enabled mode's — i.e. the
fast path really is free, and enabling metrics is the only cost.

It also pins the determinism contract: both modes simulate the exact
same machine, so cycle counts match and only the ``metrics`` payload
differs.
"""

import time

from conftest import emit, emit_json

from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer,
)
from repro.engine import execute_spec

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ATTACKER_KEY = bytes(range(16, 32))


def build_specs(collect_stats, runs_per_type=6):
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY)
    return [spec.replace(collect_stats=collect_stats)
            for spec in attack.histogram_specs(
                runs_per_type=runs_per_type, target_slot=4)]


def time_once(specs):
    start = time.perf_counter()
    cycles = [execute_spec(spec).cycles for spec in specs]
    return time.perf_counter() - start, cycles


def test_stats_overhead(benchmark):
    enabled_specs = build_specs(True)
    disabled_specs = build_specs(False)

    def measure(repeats=3):
        enabled_times, disabled_times = [], []
        enabled_cycles = disabled_cycles = None
        for _ in range(repeats):
            elapsed, enabled_cycles = time_once(enabled_specs)
            enabled_times.append(elapsed)
            elapsed, disabled_cycles = time_once(disabled_specs)
            disabled_times.append(elapsed)
        return (min(enabled_times), min(disabled_times),
                enabled_cycles, disabled_cycles)

    enabled_s, disabled_s, enabled_cycles, disabled_cycles = \
        benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = enabled_s / disabled_s - 1
    lines = [
        f"fig6 workload, {len(enabled_specs)} trials, best of 3:",
        f"  collect_stats=True   {enabled_s * 1e3:8.1f} ms",
        f"  collect_stats=False  {disabled_s * 1e3:8.1f} ms",
        f"  enabled-mode overhead: {overhead:+.1%}",
    ]
    emit("stats_overhead", "\n".join(lines))
    emit_json("stats_overhead",
              {"trials": len(enabled_specs),
               "enabled_seconds": enabled_s,
               "disabled_seconds": disabled_s,
               "enabled_overhead": overhead})

    # Metrics must never change the simulated machine.
    assert enabled_cycles == disabled_cycles
    # Disabled mode is the baseline: it may not cost more than noise
    # relative to the mode that does strictly more work.
    assert disabled_s <= enabled_s * 1.05
    # And a disabled run carries no metrics payload at all.
    assert execute_spec(disabled_specs[0]).metrics == {}
