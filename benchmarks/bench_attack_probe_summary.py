"""Cross-optimization attack summary.

The paper evaluates silent stores and the DMP in depth; the analysis of
Section IV implies attacks on the remaining classes.  This bench runs
one calibrated probe per class and reports the measured per-experiment
timing signal — every studied optimization yields a working receiver on
this substrate.
"""

from conftest import emit

from repro.attacks.compsimp_attack import SignificanceProbe, ZeroSkipAttack
from repro.attacks.packing_attack import OperandPackingAttack
from repro.attacks.reuse_attack import ComputationReuseAttack
from repro.attacks.rfc_attack import RegisterFileCompressionAttack
from repro.attacks.vp_attack import ValuePredictionAttack


def run_probes():
    rows = []
    zero_skip = ZeroSkipAttack()
    fast = zero_skip.measure(0, 1).cycles
    slow = zero_skip.measure(9, 1).cycles
    rows.append(("CS / zero-skip mul", "secret == 0?", slow - fast,
                 zero_skip.secret_is_zero(0)
                 and not zero_skip.secret_is_zero(5)))

    significance = SignificanceProbe()
    curve = significance.significance_curve((1, 6))
    rows.append(("PC / early-term mul", "msb range of secret",
                 curve[6] - curve[1], curve[1] < curve[6]))

    packing = OperandPackingAttack(pairs=32)
    narrow = packing.measure(7).cycles
    wide = packing.measure(1 << 30).cycles
    rows.append(("PC / operand packing", "secret < 2^16?",
                 wide - narrow,
                 packing.classify(42) and not packing.classify(1 << 30)))

    vp = ValuePredictionAttack(secret_value=0x5A)
    match, mismatch = vp.calibrate()
    recovered, _ = vp.recover_byte()
    rows.append(("VP / squash timing", "secret == trained value?",
                 mismatch - match, recovered == 0x5A))

    reuse = ComputationReuseAttack(secret_value=123, variant="sv")
    equal, differ = reuse.distinguishes(123, 124)
    value, _ = reuse.recover_value(range(118, 130))
    rows.append(("CR / Sv memoization", "operand == primed value?",
                 differ - equal, value == 123))

    rfc = RegisterFileCompressionAttack()
    comp = rfc.measure(1).cycles
    incomp = rfc.measure(0xDEADBEEF).cycles
    rows.append(("RFC / rename stalls", "register values 0/1?",
                 incomp - comp,
                 rfc.classify_compressible(0)
                 and not rfc.classify_compressible(999999)))
    return rows


def test_attack_probe_summary(once):
    rows = once(run_probes)
    lines = [f"{'optimization / channel':26s} "
             f"{'leaked predicate':28s} {'signal':>8s} {'works':>6s}"]
    for name, predicate, signal, works in rows:
        lines.append(f"{name:26s} {predicate:28s} {signal:8d} "
                     f"{str(works):>6s}")
    lines += ["",
              "signal = per-experiment cycle difference between the "
              "two predicate outcomes.",
              "(SS and DMP have their own dedicated figures: "
              "fig6 / fig7.)"]
    emit("attack_probe_summary", "\n".join(lines))

    for name, _predicate, signal, works in rows:
        assert signal > 0, name
        assert works, name
