"""Figure 2 — example MLDs for prior-work structures.

Evaluates each descriptor over a concrete domain and reports its
outcome partition and channel-capacity bound (Section IV-A3).
"""

from conftest import emit

from repro.core.descriptors import (
    mld_cache_rand, mld_single_cycle_alu, mld_zero_skip_mul,
)
from repro.core.mld import InstSnapshot
from repro.memory.cache import Cache


def evaluate_figure2():
    rows = []
    alu_domain = [(InstSnapshot(op="add", args=(a, b)),)
                  for a in range(16) for b in range(16)]
    rows.append(("single_cycle_alu",
                 mld_single_cycle_alu.outcome_count(alu_domain),
                 mld_single_cycle_alu.capacity_bits(alu_domain)))
    mul_domain = [(InstSnapshot(op="mul", args=(a, b)),)
                  for a in range(16) for b in range(16)]
    rows.append(("zero_skip_mul",
                 mld_zero_skip_mul.outcome_count(mul_domain),
                 mld_zero_skip_mul.capacity_bits(mul_domain)))
    cache = Cache(num_sets=8, ways=2)
    cache.access(0x100)
    cache_domain = [(InstSnapshot(addr=64 * i), cache)
                    for i in range(64)] + [
                        (InstSnapshot(addr=0x100), cache)]
    rows.append(("cache_rand",
                 mld_cache_rand.outcome_count(cache_domain),
                 mld_cache_rand.capacity_bits(cache_domain)))
    return rows


def test_fig2_baseline_mlds(benchmark):
    rows = benchmark(evaluate_figure2)
    lines = [f"{'MLD':20s} {'outcomes':>9s} {'capacity (bits)':>16s}"]
    for name, outcomes, capacity in rows:
        lines.append(f"{name:20s} {outcomes:9d} {capacity:16.2f}")
    emit("fig2_baseline_mlds", "\n".join(lines))

    by_name = {name: (outcomes, capacity)
               for name, outcomes, capacity in rows}
    # Example 1: Safe — exactly one outcome, zero capacity.
    assert by_name["single_cycle_alu"] == (1, 0.0)
    # Example 2: two timing outcomes, one bit.
    assert by_name["zero_skip_mul"][0] == 2
    # Example 3: num_sets + 1 distinguishable outcomes.
    assert by_name["cache_rand"][0] == 8 + 1
