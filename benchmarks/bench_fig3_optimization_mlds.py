"""Figure 3 — MLDs for the seven studied optimization classes.

Evaluates Examples 4-9 over concrete domains: outcome counts, capacity
bounds, and the concatenation (``||``) structure of the composite
descriptors.
"""

from conftest import emit

from repro.core.descriptors import (
    VP_CONFIDENCE_DOMAIN, mld_im2l_prefetcher, mld_im3l_prefetcher,
    mld_instruction_reuse, mld_operand_packing, mld_rf_compression,
    mld_silent_stores, mld_v_prediction,
)
from repro.core.mld import InstSnapshot
from repro.memory.cache import Cache


def evaluate_figure3():
    rows = []
    narrow_wide = [0x1, 0xFFFF, 0x10000]
    packing_domain = [(InstSnapshot(args=(a, b)), InstSnapshot(args=(c, d)))
                      for a in narrow_wide for b in narrow_wide
                      for c in narrow_wide for d in narrow_wide]
    rows.append(("operand_packing (Ex.4)",
                 mld_operand_packing.outcome_count(packing_domain),
                 mld_operand_packing.capacity_bits(packing_domain)))

    memory = {0x10: 42}
    ss_domain = [(InstSnapshot(addr=0x10, data=d), memory)
                 for d in range(64)]
    rows.append(("silent_stores (Ex.5)",
                 mld_silent_stores.outcome_count(ss_domain),
                 mld_silent_stores.capacity_bits(ss_domain)))

    buffer = {0x40: (3, 4)}
    reuse_domain = [(InstSnapshot(pc=0x40, args=(a, b)), buffer)
                    for a in range(8) for b in range(8)]
    rows.append(("instruction_reuse (Ex.6)",
                 mld_instruction_reuse.outcome_count(reuse_domain),
                 mld_instruction_reuse.capacity_bits(reuse_domain)))

    vp_domain = [(InstSnapshot(pc=0x80, dst=d),
                  {0x80: {"conf": c, "prediction": 4}})
                 for d in range(8)
                 for c in range(VP_CONFIDENCE_DOMAIN)]
    rows.append(("v_prediction (Ex.7)",
                 mld_v_prediction.outcome_count(vp_domain),
                 mld_v_prediction.capacity_bits(vp_domain)))

    rf_domain = [([a, b, c],)
                 for a in (0, 5) for b in (1, 9) for c in (0, 7)]
    rows.append(("rf_compression (Ex.8)",
                 mld_rf_compression.outcome_count(rf_domain),
                 mld_rf_compression.capacity_bits(rf_domain)))

    cache = Cache(num_sets=16, ways=2)
    base_z, base_y, base_x = 0x1000, 0x2000, 0x4000
    imp = {"baseZ": base_z, "baseY": base_y, "baseX": base_x,
           "start": 4, "shift": 0}
    imp_domain = []
    for secret in range(0, 1024, 64):
        memory = {base_z + 4: 7, base_y + 7: secret}
        imp_domain.append((imp, cache, memory))
    rows.append(("im3l_prefetcher (Ex.9)",
                 mld_im3l_prefetcher.outcome_count(imp_domain),
                 mld_im3l_prefetcher.capacity_bits(imp_domain)))
    rows.append(("im2l_prefetcher (IV-D4)",
                 mld_im2l_prefetcher.outcome_count(imp_domain),
                 mld_im2l_prefetcher.capacity_bits(imp_domain)))
    return rows


def test_fig3_optimization_mlds(benchmark):
    rows = benchmark(evaluate_figure3)
    lines = [f"{'MLD':28s} {'outcomes':>9s} {'capacity (bits)':>16s}"]
    for name, outcomes, capacity in rows:
        lines.append(f"{name:28s} {outcomes:9d} {capacity:16.2f}")
    emit("fig3_optimization_mlds", "\n".join(lines))

    by_name = {name: outcomes for name, outcomes, _capacity in rows}
    assert by_name["operand_packing (Ex.4)"] == 2
    assert by_name["silent_stores (Ex.5)"] == 2
    assert by_name["instruction_reuse (Ex.6)"] == 2
    # VP: confidence || match — more than two outcomes.
    assert by_name["v_prediction (Ex.7)"] == 2 * VP_CONFIDENCE_DOMAIN
    # RFC: one bit per register over the 3-register domain.
    assert by_name["rf_compression (Ex.8)"] == 8
    # The URG contrast: the 3-level IMP's outcome varies with the
    # secret (16 line-distinct secrets -> 16 outcomes); the 2-level
    # variant is blind to it.
    assert by_name["im3l_prefetcher (Ex.9)"] == 16
    assert by_name["im2l_prefetcher (IV-D4)"] == 1
