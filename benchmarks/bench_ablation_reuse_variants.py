"""Ablation (Section VI-A3) — computation reuse Sv vs Sn.

The paper's security-conscious-microarchitecture example: the Sv scheme
(operand-value keys) performs best but leaks operand values; Sn
(register-name keys) retains substantial reuse on real patterns while
leaking only control-flow-class information.  Measured here on two
workloads (a loop-invariant divide, where both variants hit, and the
value-equality pattern only Sv can catch) plus the attack outcome
against each variant.  The performance grid runs as one engine batch.
"""

from conftest import emit, emit_json

from repro.attacks.reuse_attack import ComputationReuseAttack
from repro.engine import HierarchySpec, PluginSpec, SimSpec, run_batch
from repro.isa.assembler import Assembler
from repro.pipeline.config import CPUConfig


def invariant_div_loop(trips=24):
    """A loop-invariant divide: both Sv and Sn can memoize it."""
    asm = Assembler()
    asm.li(1, 5040)
    asm.li(2, 7)
    asm.li(3, 0)
    asm.li(4, trips)
    asm.label("loop")
    asm.div(5, 1, 2)
    asm.addi(3, 3, 1)
    asm.blt(3, 4, "loop")
    asm.halt()
    return asm.assemble()


def value_equal_rewritten_loop(trips=24):
    """Same operand values but rewritten registers: Sv hits, Sn can't."""
    asm = Assembler()
    asm.li(1, 5040)
    asm.li(2, 7)
    asm.li(3, 0)
    asm.li(4, trips)
    asm.label("loop")
    asm.div(5, 1, 2)
    asm.li(1, 5040)           # same value, new register version
    asm.addi(3, 3, 1)
    asm.blt(3, 4, "loop")
    asm.halt()
    return asm.assemble()


def workload_spec(program, variant, label):
    plugins = () if variant == "baseline" else (
        PluginSpec.of("computation-reuse", variant=variant),)
    return SimSpec(program=program, config=CPUConfig(latency_div=20),
                   hierarchy=HierarchySpec(memory_size=1 << 14),
                   plugins=plugins, label=label)


def run_ablation(cache=None):
    workloads = {
        "invariant-div": invariant_div_loop(),
        "value-equal-rewritten": value_equal_rewritten_loop(),
    }
    specs = [workload_spec(program, variant, f"{name}/{variant}")
             for name, program in workloads.items()
             for variant in ("baseline", "sv", "sn")]
    perf = {}
    for result in run_batch(specs, cache=cache):
        name, variant = result.label.split("/")
        reuse = result.observations["plugins"].get("computation-reuse")
        hit_rate = (reuse["hits"] / reuse["lookups"]
                    if reuse and reuse["lookups"] else 0.0)
        perf[(name, variant)] = (result.cycles, hit_rate)
    security = {}
    for variant in ("sv", "sn"):
        attack = ComputationReuseAttack(secret_value=123,
                                        variant=variant)
        value, _experiments = attack.recover_value(range(118, 130))
        security[variant] = value
    return perf, security


def test_ablation_reuse_variants(once, results_cache):
    perf, security = once(run_ablation, results_cache)
    lines = [f"{'workload':24s} {'variant':9s} {'cycles':>7s} "
             f"{'hit rate':>9s}"]
    for (name, variant), (cycles, hit_rate) in perf.items():
        lines.append(f"{name:24s} {variant:9s} {cycles:7d} "
                     f"{hit_rate:9.2f}")
    lines += [
        "",
        f"attack recovers secret operand under Sv: {security['sv']}",
        f"attack recovers secret operand under Sn: {security['sn']}",
    ]
    emit("ablation_reuse_variants", "\n".join(lines))
    emit_json("ablation_reuse_variants",
              {"perf": {f"{name}/{variant}": {"cycles": cycles,
                                              "hit_rate": hit_rate}
                        for (name, variant), (cycles, hit_rate)
                        in perf.items()},
               "security": security})

    # Performance shape: both variants speed up the invariant loop;
    # only Sv speeds up the rewritten-register loop.
    inv = {v: perf[("invariant-div", v)][0]
           for v in ("baseline", "sv", "sn")}
    rewr = {v: perf[("value-equal-rewritten", v)][0]
            for v in ("baseline", "sv", "sn")}
    assert inv["sv"] < inv["baseline"]
    assert inv["sn"] < inv["baseline"]
    assert rewr["sv"] < rewr["baseline"]
    assert perf[("value-equal-rewritten", "sn")][1] == 0.0
    # Security shape: Sv leaks the operand, Sn does not.
    assert security["sv"] == 123
    assert security["sn"] is None
