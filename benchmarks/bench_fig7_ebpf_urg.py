"""Figures 1 & 7 — the universal read gadget through the eBPF sandbox.

End-to-end: the verifier accepts the NULL-checked attacker program and
rejects the unchecked variant; the JITed program triggers the 3-level
IMP; the prefetcher's blind dereferences leak an attacker-chosen secret
from "kernel" memory over a Prime+Probe cache channel, byte by byte.
"""

from conftest import emit

from repro.attacks.dmp_attack import DMPSandboxAttack, build_attacker_program
from repro.sandbox.verifier import Verifier, VerifierError

SECRET = b"Pandora's Box, ISCA 2021"


def run_urg():
    attack = DMPSandboxAttack()
    attack.runtime.place_kernel_secret(
        attack.config.kernel_secret_base, SECRET)
    results = attack.leak_bytes(attack.config.kernel_secret_base,
                                len(SECRET))
    rejected = False
    try:
        Verifier().verify(build_attacker_program(16, null_checks=False))
    except VerifierError:
        rejected = True
    cycles = attack.last_cpu.stats.cycles
    return attack, results, rejected, cycles


def test_fig7_ebpf_urg(once):
    attack, results, rejected, cycles_per_leak = once(run_urg)
    leaked = bytes(r.leaked_byte if r.leaked_byte is not None else 0
                   for r in results)
    correct = sum(r.correct for r in results)
    lines = [
        f"verifier rejects unchecked program: {rejected}",
        f"verifier accepts NULL-checked program: True",
        f"secret placed at {results[0].target_addr:#x} (kernel space)",
        f"leaked: {leaked!r}",
        f"accuracy: {correct}/{len(results)} bytes",
        f"~cycles per leaked byte (one sandbox run): {cycles_per_leak}",
        "",
        "IMP learned chain:",
    ]
    for link in attack.last_imp.links:
        lines.append(f"  pc {link.producer_pc} -> pc {link.consumer_pc}: "
                     f"addr = {link.base:#x} + (value << {link.shift}), "
                     f"confidence {link.confidence}")
    emit("fig7_ebpf_urg", "\n".join(lines))

    assert rejected
    assert leaked == SECRET
    assert correct == len(results)
