"""Section IV-A3 — channel capacity: MLD bound vs achieved.

The MLD partition size upper-bounds what one observation can encode;
this bench measures, for three probes, the mutual information the
*actual pipeline timing* carries and compares it to the bound — the
empirical complement of the framework's static analysis.
"""

from conftest import emit

from repro.analysis.information import (
    capacity_achieved, leakage_per_observation,
)
from repro.attacks.compsimp_attack import ZeroSkipAttack
from repro.attacks.packing_attack import OperandPackingAttack
from repro.attacks.vp_attack import ValuePredictionAttack


def run_measurements():
    rows = []
    zero_skip = ZeroSkipAttack(chain_length=16)
    secrets = [0, 0, 0, 0, 1, 7, 99, 12345]
    bits, _ = leakage_per_observation(
        lambda s: zero_skip.measure(s, 1).cycles, secrets, bin_width=16)
    rows.append(("zero-skip multiply", 2, bits))

    packing = OperandPackingAttack(pairs=24)
    secrets = [3, 0xFFFF, 0x5A, 0x1234, 0x10000, 1 << 30, 1 << 50,
               0x12345678]
    bits, _ = leakage_per_observation(
        lambda s: packing.measure(s).cycles, secrets, bin_width=8)
    rows.append(("operand packing", 2, bits))

    vp = ValuePredictionAttack(secret_value=0)  # secret passed per call
    secrets = [0x11, 0x11, 0x11, 0x11, 0x22, 0x33, 0x44, 0x55]

    def vp_measure(secret):
        attack = ValuePredictionAttack(secret_value=secret)
        return attack.measure(0x11).cycles  # fixed training value

    bits, _ = leakage_per_observation(vp_measure, secrets, bin_width=8)
    rows.append(("value prediction", 2, bits))
    return rows


def test_channel_capacity(once):
    rows = once(run_measurements)
    lines = [f"{'channel':22s} {'MLD bound':>10s} "
             f"{'achieved (bits)':>16s} {'fraction':>9s}"]
    for name, outcomes, bits in rows:
        fraction = capacity_achieved(bits, outcomes)
        lines.append(f"{name:22s} {outcomes - 1:9d}b "
                     f"{bits:16.3f} {fraction:9.2f}")
    lines.append("")
    lines.append("bound = log2(MLD outcomes); achieved = mutual "
                 "information of (secret, cycles) samples")
    emit("channel_capacity", "\n".join(lines))

    for name, outcomes, bits in rows:
        assert bits > 0.5, name                      # a real channel
        assert bits <= 1.0 + 1e-9, name              # within the bound