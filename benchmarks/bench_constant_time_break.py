"""Section III's headline — "all optimizations we study break current
constant-time programming" — demonstrated on real primitives.

Three textbook constant-time building blocks, each verified
input-independent on the Baseline core, each broken by a studied
optimization: the trivial-op simplifier leaks how far a ct-memcmp's
inputs agree, the zero-skip multiplier leaks a ct-select's condition,
and Sv computation reuse leaks whether a ct-lookup's index repeated.

Stateless probes are declarative engine specs run as one batch; the
Sv-reuse pair needs a plug-in whose reuse table survives across two
calls, so it goes through the engine's persistent-parts session.
"""

from conftest import emit, emit_json

from repro.crypto.ct_primitives import (
    A_BASE, TABLE_BASE, build_ct_compare, build_ct_lookup,
    build_ct_select,
)
from repro.engine import HierarchySpec, PluginSpec, Session, SimSpec, \
    run_batch
from repro.isa.opcodes import Op
from repro.optimizations.computation_reuse import ComputationReusePlugin
from repro.pipeline.config import CPUConfig

MEMORY = HierarchySpec(memory_size=1 << 16)


def probe(program, memory_writes, plugins=(), config=None, label=""):
    return SimSpec(program=program, config=config, hierarchy=MEMORY,
                   plugins=tuple(plugins),
                   mem_writes=tuple(memory_writes), label=label)


def compare_writes(a, b):
    writes = [(A_BASE + i, byte, 1) for i, byte in enumerate(a)]
    writes += [(0x2000 + i, byte, 1) for i, byte in enumerate(b)]
    return writes


def run_experiment():
    report = {}
    specs = []
    # 1. ct_compare vs trivial bitwise simplification.
    program = build_ct_compare(8)
    config = CPUConfig(num_alu_ports=1, latency_alu=3)
    secret = b"SECRETAA"
    simplify = PluginSpec.of("computation-simplification",
                             rules=("trivial_bitwise",))
    for pl in (0, 4, 8):
        writes = compare_writes(secret,
                                secret[:pl] + b"\xee" * (8 - pl))
        specs.append(probe(program, writes, config=config,
                           label=f"compare/base/{pl}"))
        specs.append(probe(program, writes, plugins=(simplify,),
                           config=config, label=f"compare/attack/{pl}"))

    # 2. ct_select vs zero-skip multiply.
    program = build_ct_select()
    config = CPUConfig(latency_mul=8, num_mul_units=1)
    zero_skip = PluginSpec.of("computation-simplification",
                              rules=("zero_skip_mul",))
    select_writes = lambda c: [(A_BASE, c, 8), (A_BASE + 8, 0, 8),
                               (A_BASE + 16, 222, 8)]
    for c in (0, 1):
        specs.append(probe(program, select_writes(c), config=config,
                           label=f"select/base/{c}"))
        specs.append(probe(program, select_writes(c),
                           plugins=(zero_skip,), config=config,
                           label=f"select/attack/{c}"))
    cycles = {result.label: result.cycles
              for result in run_batch(specs)}
    report["ct_compare / trivial ops"] = (
        {pl: cycles[f"compare/base/{pl}"] for pl in (0, 4, 8)},
        {pl: cycles[f"compare/attack/{pl}"] for pl in (0, 4, 8)})
    report["ct_select / zero-skip mul"] = (
        {c: cycles[f"select/base/{c}"] for c in (0, 1)},
        {c: cycles[f"select/attack/{c}"] for c in (0, 1)})

    # 3. ct_lookup vs Sv computation reuse (replay across two calls).
    # The reuse table must persist across the pair of calls, so the
    # plug-in object is shared between two persistent-parts sessions.
    program = build_ct_lookup(8)
    config = CPUConfig(latency_mul=10, num_mul_units=1)
    entries = [(i * i + 3) for i in range(8)]

    def lookup_writes(k):
        writes = [(A_BASE, k, 8)]
        writes += [(TABLE_BASE + 8 * i, v, 8)
                   for i, v in enumerate(entries)]
        return writes

    def lookup_call(k, plugins):
        spec = probe(program, lookup_writes(k))
        session = Session.from_parts(
            program, MEMORY.build(memory=spec.build_memory()),
            config=config, plugins=plugins)
        return session.run().cycles

    def second_call(first_k, second_k, plugins):
        if plugins:
            lookup_call(first_k, plugins)
        return lookup_call(second_k, plugins)

    baseline = {"repeat": second_call(5, 5, []),
                "change": second_call(4, 5, [])}
    plugin = ComputationReusePlugin(variant="sv",
                                    ops=frozenset({Op.MUL}))
    attacked = {"repeat": second_call(5, 5, [plugin])}
    plugin = ComputationReusePlugin(variant="sv",
                                    ops=frozenset({Op.MUL}))
    attacked["change"] = second_call(4, 5, [plugin])
    report["ct_lookup / Sv reuse"] = (baseline, attacked)
    return report


def test_constant_time_break(once):
    report = once(run_experiment)
    lines = []
    for name, (baseline, attacked) in report.items():
        lines.append(f"{name}:")
        lines.append(f"  baseline cycles: {baseline}")
        lines.append(f"  attacked cycles: {attacked}")
        lines.append("")
    emit("constant_time_break", "\n".join(lines))
    emit_json("constant_time_break",
              {name: {"baseline": {str(k): v
                                   for k, v in baseline.items()},
                      "attacked": {str(k): v
                                   for k, v in attacked.items()}}
               for name, (baseline, attacked) in report.items()})

    compare_base, compare_attacked = report["ct_compare / trivial ops"]
    assert len(set(compare_base.values())) == 1          # CT holds
    assert (compare_attacked[0] > compare_attacked[4]
            > compare_attacked[8])                       # ...and breaks
    select_base, select_attacked = report["ct_select / zero-skip mul"]
    assert len(set(select_base.values())) == 1
    assert select_attacked[0] != select_attacked[1]
    lookup_base, lookup_attacked = report["ct_lookup / Sv reuse"]
    assert lookup_base["repeat"] == lookup_base["change"]
    assert lookup_attacked["repeat"] < lookup_attacked["change"]
