"""Section III's headline — "all optimizations we study break current
constant-time programming" — demonstrated on real primitives.

Three textbook constant-time building blocks, each verified
input-independent on the Baseline core, each broken by a studied
optimization: the trivial-op simplifier leaks how far a ct-memcmp's
inputs agree, the zero-skip multiplier leaks a ct-select's condition,
and Sv computation reuse leaks whether a ct-lookup's index repeated.
"""

from conftest import emit

from repro.crypto.ct_primitives import (
    A_BASE, TABLE_BASE, build_ct_compare, build_ct_lookup,
    build_ct_select,
)
from repro.isa.opcodes import Op
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.computation_reuse import ComputationReusePlugin
from repro.optimizations.computation_simplification import (
    ComputationSimplificationPlugin,
)
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def run(program, memory_writes, plugins=(), config=None):
    memory = FlatMemory(1 << 16)
    for addr, value, width in memory_writes:
        memory.write(addr, value, width)
    cpu = CPU(program, MemoryHierarchy(memory, l1=Cache()),
              config=config, plugins=list(plugins))
    cpu.run()
    return cpu.stats.cycles


def compare_writes(a, b):
    writes = [(A_BASE + i, byte, 1) for i, byte in enumerate(a)]
    writes += [(0x2000 + i, byte, 1) for i, byte in enumerate(b)]
    return writes


def run_experiment():
    report = {}
    # 1. ct_compare vs trivial bitwise simplification.
    program = build_ct_compare(8)
    config = CPUConfig(num_alu_ports=1, latency_alu=3)
    secret = b"SECRETAA"
    baseline = {pl: run(program, compare_writes(
        secret, secret[:pl] + b"\xee" * (8 - pl)), config=config)
        for pl in (0, 4, 8)}
    attacked = {pl: run(program, compare_writes(
        secret, secret[:pl] + b"\xee" * (8 - pl)),
        plugins=[ComputationSimplificationPlugin(
            rules=("trivial_bitwise",))], config=config)
        for pl in (0, 4, 8)}
    report["ct_compare / trivial ops"] = (baseline, attacked)

    # 2. ct_select vs zero-skip multiply.
    program = build_ct_select()
    config = CPUConfig(latency_mul=8, num_mul_units=1)
    select_writes = lambda c: [(A_BASE, c, 8), (A_BASE + 8, 0, 8),
                               (A_BASE + 16, 222, 8)]
    baseline = {c: run(program, select_writes(c), config=config)
                for c in (0, 1)}
    attacked = {c: run(program, select_writes(c),
                       plugins=[ComputationSimplificationPlugin(
                           rules=("zero_skip_mul",))], config=config)
                for c in (0, 1)}
    report["ct_select / zero-skip mul"] = (baseline, attacked)

    # 3. ct_lookup vs Sv computation reuse (replay across two calls).
    program = build_ct_lookup(8)
    config = CPUConfig(latency_mul=10, num_mul_units=1)
    entries = [(i * i + 3) for i in range(8)]

    def lookup_writes(k):
        writes = [(A_BASE, k, 8)]
        writes += [(TABLE_BASE + 8 * i, v, 8)
                   for i, v in enumerate(entries)]
        return writes

    def second_call(first_k, second_k, plugins):
        if plugins:
            run(program, lookup_writes(first_k), plugins=plugins,
                config=config)
        return run(program, lookup_writes(second_k), plugins=plugins,
                   config=config)

    baseline = {"repeat": second_call(5, 5, []),
                "change": second_call(4, 5, [])}
    plugin = ComputationReusePlugin(variant="sv",
                                    ops=frozenset({Op.MUL}))
    attacked = {"repeat": second_call(5, 5, [plugin])}
    plugin = ComputationReusePlugin(variant="sv",
                                    ops=frozenset({Op.MUL}))
    attacked["change"] = second_call(4, 5, [plugin])
    report["ct_lookup / Sv reuse"] = (baseline, attacked)
    return report


def test_constant_time_break(once):
    report = once(run_experiment)
    lines = []
    for name, (baseline, attacked) in report.items():
        lines.append(f"{name}:")
        lines.append(f"  baseline cycles: {baseline}")
        lines.append(f"  attacked cycles: {attacked}")
        lines.append("")
    emit("constant_time_break", "\n".join(lines))

    compare_base, compare_attacked = report["ct_compare / trivial ops"]
    assert len(set(compare_base.values())) == 1          # CT holds
    assert (compare_attacked[0] > compare_attacked[4]
            > compare_attacked[8])                       # ...and breaks
    select_base, select_attacked = report["ct_select / zero-skip mul"]
    assert len(set(select_base.values())) == 1
    assert select_attacked[0] != select_attacked[1]
    lookup_base, lookup_attacked = report["ct_lookup / Sv reuse"]
    assert lookup_base["repeat"] == lookup_base["change"]
    assert lookup_attacked["repeat"] < lookup_attacked["change"]
