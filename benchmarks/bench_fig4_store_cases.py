"""Figure 4 — the four store sequences under read-port stealing.

Forces each case with a dedicated micro-program and reports the
outcome bookkeeping plus run time:

* Case A — SS-Load returns in time, values equal → silent dequeue.
* Case B — SS-Load returns in time, values differ → normal perform.
* Case C — no free load port at address resolution → no candidacy.
* Case D — SS-Load would return after the store performed (cold line,
  no-allocate port steal) → no candidacy.

Each case is a declarative engine spec; the tracer rides along as a
registered plug-in so the session exposes its Figure-4 timelines.
"""

from conftest import emit, emit_json

from repro.engine import HierarchySpec, PluginSpec, Session, SimSpec
from repro.isa.assembler import Assembler
from repro.pipeline.config import CPUConfig


def case_spec(case):
    asm = Assembler()
    config = CPUConfig()
    asm.li(1, 0x1000)
    if case in ("A", "B"):
        asm.load(2, 1, 0)            # warm line: SS-Load will hit
        asm.fence()
        asm.li(3, 42 if case == "A" else 7)
        asm.store(3, 1, 0)
    elif case == "C":
        config = CPUConfig(num_load_ports=1)
        asm.load(2, 1, 0)
        asm.fence()
        asm.li(5, 0x2000)
        asm.load(6, 5, 0)            # hog the single load port
        asm.load(6, 5, 8)
        asm.li(3, 42)
        asm.store(3, 1, 0)
        asm.load(6, 5, 16)
        asm.load(6, 5, 24)
        asm.load(6, 5, 32)
    else:  # D: cold line, the port-stealing SS-Load misses
        asm.li(3, 42)
        asm.store(3, 1, 0)
    asm.halt()
    return SimSpec(
        program=asm.assemble(), config=config,
        hierarchy=HierarchySpec(memory_size=1 << 16),
        plugins=(PluginSpec.of("silent-stores"),
                 PluginSpec.of("pipeline-tracer")),
        mem_writes=((0x1000, 42, 8),), label=case)


def run_all_cases():
    results = {}
    for case in "ABCD":
        session = Session.from_spec(case_spec(case))
        run = session.run()
        results[case] = {
            "cycles": run.cycles,
            "silent": run.stats["silent_stores"],
            "performed": run.stats["stores_performed"],
            "stats": run.observations["plugins"]["silent-stores"],
            "metrics": run.metrics,
            "timelines": session.plugin(
                "pipeline-tracer").store_timelines(),
        }
    return results


def test_fig4_store_cases(benchmark):
    results = benchmark(run_all_cases)
    lines = [f"{'case':6s} {'cycles':>7s} {'silent':>7s} "
             f"{'performed':>10s}  outcome"]
    outcome_key = {"A": "case_a_silent", "B": "case_b_nonsilent",
                   "C": "case_c_no_port", "D": "case_d_late"}
    for case, row in results.items():
        lines.append(
            f"{case:6s} {row['cycles']:7d} {row['silent']:7d} "
            f"{row['performed']:10d}  {outcome_key[case]}="
            f"{row['stats'][outcome_key[case]]}")
    lines.append("")
    lines.append("store event timelines (the Figure 4 sequences):")
    for case, row in results.items():
        for timeline in row["timelines"]:
            lines.append(f"  case {case}: {timeline}")
    emit("fig4_store_cases", "\n".join(lines))
    emit_json("fig4_store_cases",
              {**{case: {key: row[key]
                         for key in ("cycles", "silent", "performed",
                                     "stats", "timelines")}
                  for case, row in results.items()},
               "stats": {case: row["metrics"]
                         for case, row in results.items()}})

    assert results["A"]["silent"] == 1 and results["A"]["performed"] == 0
    assert results["B"]["silent"] == 0 and results["B"]["performed"] == 1
    assert results["C"]["stats"]["case_c_no_port"] >= 1 or \
        results["C"]["silent"] == 1
    assert results["D"]["stats"]["case_d_late"] == 1
    assert results["D"]["performed"] == 1
