"""Contract synthesis — fuzzing throughput and backend parity.

The synthesizer (``python -m repro synthesize``) is a fuzzing fleet:
per plug-in it runs ``budget`` generated cases x two cohorts (control
and plug-in) x four secret variants.  This bench times the full sweep
over every contracted plug-in under the serial and lockstep backends
and checks the layer's contracts:

* every plug-in comes back SOUND and non-vacuous — the declared
  ``LINT_CONTRACT``\\ s explain all observed divergence and the trigger
  templates actually fire;
* the learned contracts and full reports are bitwise identical across
  backends (the cohort shape is lockstep's native unit of work, so
  this exercises its grouping on the real workload);
* the sweep stays interactive — the CI smoke leg runs it on every
  push, so a budget-10 sweep must finish in seconds, not minutes.
"""

import time

from conftest import emit, emit_json

from repro.lint.synthesize import (
    DEFAULT_BUDGET, report_json, synthesize_all,
)

SEED = 0


def timed_sweep(backend):
    start = time.perf_counter()
    results = synthesize_all(budget=DEFAULT_BUDGET, seed=SEED,
                             backend=backend)
    return results, time.perf_counter() - start


def run_synthesis():
    serial, serial_s = timed_sweep("serial")
    lockstep, lockstep_s = timed_sweep("lockstep")
    plugins = {}
    for name, result in sorted(serial.items()):
        plugins[name] = {
            "declared": len(result.declared),
            "learned": len(result.learned),
            "witnessed": len(result.witnessed),
            "gaps": len(result.undeclared),
            "unwitnessed": len(result.unwitnessed),
            "cases": len(result.observations),
            "ok": result.ok,
            "vacuous": result.vacuous,
        }
    return {
        "budget": DEFAULT_BUDGET,
        "seed": SEED,
        "serial_s": serial_s,
        "lockstep_s": lockstep_s,
        "plugins": plugins,
        "all_sound": all(row["ok"] for row in plugins.values()),
        "none_vacuous": not any(row["vacuous"]
                                for row in plugins.values()),
        "identical_reports": (report_json(serial)
                              == report_json(lockstep)),
    }


def test_contract_synthesis(once):
    row = once(run_synthesis)
    lines = [
        f"contract synthesis sweep: budget={row['budget']} "
        f"seed={row['seed']}",
        f"  serial:   {row['serial_s']:8.3f} s",
        f"  lockstep: {row['lockstep_s']:8.3f} s",
        f"  {'plugin':30s} {'decl':>5s} {'learn':>6s} {'wit':>4s} "
        f"{'gaps':>5s}",
    ]
    for name, info in sorted(row["plugins"].items()):
        lines.append(
            f"  {name:30s} {info['declared']:>5d} "
            f"{info['learned']:>6d} {info['witnessed']:>4d} "
            f"{info['gaps']:>5d}")
    lines.append(f"  all sound: {row['all_sound']}   "
                 f"backend parity: {row['identical_reports']}")
    emit("contract_synthesis", "\n".join(lines))
    emit_json("contract_synthesis", row)

    assert row["all_sound"]
    assert row["none_vacuous"]
    assert row["identical_reports"]
    # Interactive budget: CI smoke runs this sweep on every push.
    assert row["serial_s"] < 120.0
