"""Overhead of the repro.telemetry layer on the Figure 6 workload.

Fleet telemetry is always importable and on by default; the disabled
path (``REPRO_TELEMETRY=0`` or ``telemetry.set_enabled(False)``) must
be near-free — every instrumentation site in ``run_batch`` and the
backends collapses to a single attribute test with no clock reads and
no registry traffic.  This bench runs the Figure 6 trial workload
through :func:`~repro.engine.runner.run_batch` in both modes,
interleaved to cancel thermal / scheduling drift, and gates the
disabled mode at ≤2% of the enabled mode's best-of wall time — the
budget ISSUE/CI enforce.

It also pins the isolation contract: telemetry never touches the
simulated machine, so per-run cycle counts are identical in both
modes, and a disabled run leaves the registry snapshot empty.
"""

import time

from conftest import emit, emit_json

from repro import telemetry
from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer,
)
from repro.engine import run_batch

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ATTACKER_KEY = bytes(range(16, 32))


def build_specs(runs_per_type=6):
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY)
    return attack.histogram_specs(runs_per_type=runs_per_type,
                                  target_slot=4)


def time_once(specs):
    start = time.perf_counter()
    cycles = [result.cycles for result in run_batch(specs)]
    return time.perf_counter() - start, cycles


def test_telemetry_overhead(benchmark):
    specs = build_specs()
    registry = telemetry.REGISTRY
    was_enabled = registry.enabled

    def measure(repeats=5):
        enabled_times, disabled_times = [], []
        enabled_cycles = disabled_cycles = None
        for _ in range(repeats):
            registry.set_enabled(True)
            elapsed, enabled_cycles = time_once(specs)
            enabled_times.append(elapsed)
            registry.set_enabled(False)
            elapsed, disabled_cycles = time_once(specs)
            disabled_times.append(elapsed)
        return (min(enabled_times), min(disabled_times),
                enabled_cycles, disabled_cycles)

    try:
        registry.set_enabled(False)
        registry.reset()
        enabled_s, disabled_s, enabled_cycles, disabled_cycles = \
            benchmark.pedantic(measure, rounds=1, iterations=1)
        # The disabled half of the interleave ran with recording off;
        # its snapshot contribution must be nothing at all.
        registry.set_enabled(False)
        registry.reset()
        time_once(specs)
        disabled_snapshot = registry.snapshot()
    finally:
        registry.set_enabled(was_enabled)
        registry.reset()

    overhead = enabled_s / disabled_s - 1
    lines = [
        f"fig6 workload, {len(specs)} trials, best of 5:",
        f"  telemetry enabled    {enabled_s * 1e3:8.1f} ms",
        f"  telemetry disabled   {disabled_s * 1e3:8.1f} ms",
        f"  enabled-mode overhead: {overhead:+.1%}",
    ]
    emit("telemetry_overhead", "\n".join(lines))
    emit_json("telemetry_overhead",
              {"trials": len(specs),
               "enabled_seconds": enabled_s,
               "disabled_seconds": disabled_s,
               "enabled_overhead": overhead})

    # Telemetry must never change the simulated machine.
    assert enabled_cycles == disabled_cycles
    # The disabled path is the baseline: within 2% of the mode doing
    # strictly more work (the CI gate on the zero-cost claim).
    assert disabled_s <= enabled_s * 1.02
    # And a disabled run records nothing.
    assert disabled_snapshot == {}
