"""Section IV-C4 — replay attacks with width narrowing.

Equality transmitters (silent stores, Sv reuse, value prediction) admit
exponentially cheaper attacks with narrower checks: a 32-bit word costs
2^32 tries in expectation at full width but 4 x 2^8 at byte width.
Measured here at widths where full search terminates, against the
silent-store oracle; the analytic expectations cover the full widths.
"""

import statistics

from conftest import emit, emit_json

from repro.engine import ResultCache
from repro.attacks.replay import (
    SilentStoreWidthOracle, expected_tries, full_width_search,
    narrowing_search,
)

SECRETS_16 = (0x3A7C, 0xC001, 0x00FF, 0x8000, 0x1234)


def run_comparison(cache=None):
    rows = []
    for secret in SECRETS_16:
        full_oracle = SilentStoreWidthOracle(secret, secret_width=2,
                                             result_cache=cache)
        _value, full_tries = full_width_search(full_oracle)
        narrow_oracle = SilentStoreWidthOracle(secret, secret_width=2,
                                               result_cache=cache)
        _value, narrow_tries = narrowing_search(narrow_oracle)
        rows.append((secret, full_tries, narrow_tries))
    return rows


def test_replay_narrowing(benchmark):
    # In-memory result cache: repeat benchmark rounds replay the same
    # specs, so they hit instead of re-simulating (tries are counted by
    # the searches themselves and stay exact either way).
    cache = ResultCache()
    rows = benchmark(run_comparison, cache)
    lines = [f"{'secret':>8s} {'full-width tries':>17s} "
             f"{'byte-narrowed tries':>20s} {'speedup':>9s}"]
    for secret, full_tries, narrow_tries in rows:
        lines.append(f"{secret:#8x} {full_tries:17d} "
                     f"{narrow_tries:20d} "
                     f"{full_tries / narrow_tries:9.1f}x")
    mean_full = statistics.mean(r[1] for r in rows)
    mean_narrow = statistics.mean(r[2] for r in rows)
    lines += [
        "",
        f"measured means (16-bit secrets): full={mean_full:.0f}, "
        f"narrowed={mean_narrow:.0f}",
        "analytic expectations (uniform secrets):",
        f"  16-bit: full {expected_tries(2, 2):.0f} vs "
        f"byte-narrowed {expected_tries(2, 1):.0f}",
        f"  32-bit: full {expected_tries(4, 4):.0f} (~2^31) vs "
        f"byte-narrowed {expected_tries(4, 1):.0f} "
        "(paper: 2^32 vs 4 x 2^8 worst case)",
    ]
    emit("replay_narrowing", "\n".join(lines))
    emit_json("replay_narrowing",
              {"rows": [{"secret": secret, "full_tries": full_tries,
                         "narrow_tries": narrow_tries}
                        for secret, full_tries, narrow_tries in rows],
               "mean_full": mean_full, "mean_narrow": mean_narrow})

    # Shape: narrowing wins by orders of magnitude and is bounded.
    for _secret, full_tries, narrow_tries in rows:
        assert narrow_tries <= 512
    assert mean_full > 20 * mean_narrow
    assert expected_tries(4, 4) / expected_tries(4, 1) == 2 ** 31 / 512
