"""Section IV-D4 — 2-level vs 3-level IMP universal-read-gadget reach.

Two halves: the *analytic* reach from the MLD-based URG analyzer, and
the *empirical* check on the full sandbox attack — the 3-level variant
leaks an arbitrary kernel byte, the 2-level variant leaks nothing
beyond [b, b + Δ).
"""

from conftest import emit

from repro.attacks.dmp_attack import DMPSandboxAttack, URGAttackConfig
from repro.core.urg import AddressRange, analyze_imp, victim_bytes_reachable


def run_experiment():
    config = URGAttackConfig()
    sandbox = AddressRange(config.sandbox_base, config.sandbox_base
                           + 0x8000)
    analytic = {}
    for levels in (2, 3):
        analysis = analyze_imp(
            levels, sandbox, base_y=config.sandbox_base + 0x1000,
            shift=0, delta_bytes=config.imp_delta * 8,
            max_memory=config.memory_size)
        analytic[levels] = (analysis,
                            victim_bytes_reachable(
                                analysis, sandbox, config.memory_size))
    empirical = {}
    for levels in (2, 3):
        attack = DMPSandboxAttack(URGAttackConfig(imp_levels=levels))
        attack.runtime.place_kernel_secret(
            attack.config.kernel_secret_base, b"\xa7")
        result = attack.leak_byte(attack.config.kernel_secret_base)
        empirical[levels] = result
    return analytic, empirical


def test_urg_reach(once):
    analytic, empirical = once(run_experiment)
    lines = ["Analytic reach (Section IV-D4):"]
    for levels, (analysis, victim_bytes) in analytic.items():
        lines.append(f"  {levels}-level: URG={analysis.is_urg}, "
                     f"victim bytes reachable={victim_bytes:#x}")
        lines.append(f"    {analysis.notes}")
    lines.append("")
    lines.append("Empirical leak of a kernel byte (0xa7):")
    for levels, result in empirical.items():
        lines.append(f"  {levels}-level: leaked={result.leaked_byte!r} "
                     f"correct={result.correct}")
    emit("urg_reach", "\n".join(lines))

    assert analytic[3][0].is_urg and not analytic[2][0].is_urg
    assert analytic[3][1] > 1000 * analytic[2][1]
    assert empirical[3].correct and empirical[3].leaked_byte == 0xA7
    assert empirical[2].leaked_byte is None
