"""Simulator throughput — the fast-path kernel's KIPS scorecard.

Runs the three end-to-end workloads (Figure 5 amplification probes,
Figure 6 BSAES timing histogram, Figure 7 eBPF universal read gadget)
under both kernels and reports simulated KIPS (thousands of retired
instructions per wall-clock second), the wall-clock speedup, and —
crucially — whether the two kernels produced bitwise-identical per-run
cycle counts, stats, and attack outcomes.  A speedup bought with drift
is a bug; ``identical`` must be True for every workload.

Unlike the figure benches this one measures *wall time*, so its JSON
lands both in ``benchmarks/results/`` and as ``BENCH_PERF.json`` at the
repository root (the artifact CI uploads and gates on).
"""

import os

from conftest import emit, emit_json

from repro.analysis.throughput import (
    render_backend_table, render_table, run_suite, write_report,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir))


def test_core_throughput(once):
    report = once(run_suite)
    emit("core_throughput", render_table(report))
    emit("core_throughput_backends", render_backend_table(report))
    emit_json("core_throughput", report)
    write_report(report, path=os.path.join(REPO_ROOT, "BENCH_PERF.json"))

    workloads = report["workloads"]
    # Exactness is non-negotiable on every workload: the fast path must
    # change nothing but wall time.
    for name, entry in workloads.items():
        assert entry["identical"], f"{name}: kernels diverged"
        assert entry["fastpath"]["instructions"] > 0
        assert (entry["fastpath"]["sim_cycles"]
                == entry["reference"]["sim_cycles"])

    # The headline target is the fig6 end-to-end attack.  Locally it
    # lands near 3.2x; the gate is 2.5x (ratcheted from the initial 2x)
    # with headroom left for shared-CI jitter.
    assert workloads["fig6"]["speedup"] >= 2.5

    # The fast-forward and template machinery must actually engage.
    counters = workloads["fig6"]["fastpath_counters"]
    assert counters["fastpath.cycles_skipped"] > 0
    assert counters["fastpath.template_hits"] > 0

    # Execution backends: bitwise-identical results, and the lockstep
    # cohort backend must beat the per-batch process pool on the
    # lint-soundness secret-pair workload (locally ~2.5-3x; the gate is
    # the acceptance floor of 1.5x).
    backends = report["backends"]
    assert backends["identical"], "execution backends diverged"
    for name in ("serial", "pool", "lockstep"):
        assert backends[name]["instructions"] > 0
        assert backends[name]["sim_cycles"] == \
            backends["serial"]["sim_cycles"]
    assert backends["lockstep_vs_pool"] >= 1.5
