"""Table II — optimization classification by MLD signature."""

from conftest import emit

from repro.core.classification import (
    PAPER_TABLE_II, generate_table_ii, render_table,
)


def test_table2_classification(benchmark):
    table = benchmark(generate_table_ii)
    emit("table2_classification", render_table())
    assert table == PAPER_TABLE_II
