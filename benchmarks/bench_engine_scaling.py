"""Engine scaling — replay-trial fan-out across worker processes.

Replay attacks are embarrassingly parallel: every trial is an
independent simulator run fully described by its spec.  This bench
times a Figure-6-sized batch (200 BSAES gadget trials) through
``run_batch`` at ``workers=1`` (in-process), ``workers=4`` (process
pool) and under the lockstep cohort backend, and checks the engine's
contract:

* the aggregated observations are bitwise identical — fan-out must
  never change results;
* on a machine with >= 4 cores, the pool is at least 2x faster.  The
  timing rows are always reported; the speedup assertion is skipped on
  smaller machines (a 1-core container cannot demonstrate it).
"""

import os
import time

from conftest import emit, emit_json

from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer,
)

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ATTACKER_KEY = bytes(range(16, 32))
TRIALS_PER_TYPE = 100        # 200 specs: a Figure-6-sized batch


def build_specs():
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY)
    return attack.histogram_specs(runs_per_type=TRIALS_PER_TYPE,
                                  target_slot=4)


def timed_batch(specs, workers, backend=None):
    from repro.engine import run_batch
    start = time.perf_counter()
    results = run_batch(specs, workers=workers, backend=backend)
    return results, time.perf_counter() - start


def run_scaling():
    specs = build_specs()
    serial, serial_s = timed_batch(specs, workers=1)
    pooled, pooled_s = timed_batch(specs, workers=4)
    lockstep, lockstep_s = timed_batch(specs, workers=1,
                                       backend="lockstep")
    return {
        "trials": len(specs),
        "serial_s": serial_s,
        "pooled_s": pooled_s,
        "lockstep_s": lockstep_s,
        "speedup": serial_s / pooled_s if pooled_s else float("inf"),
        "identical_cycles": ([r.cycles for r in serial]
                             == [r.cycles for r in pooled]
                             == [r.cycles for r in lockstep]),
        "identical_observations": (
            [(r.fingerprint, r.stats, r.observations) for r in serial]
            == [(r.fingerprint, r.stats, r.observations)
                for r in pooled]
            == [(r.fingerprint, r.stats, r.observations)
                for r in lockstep]),
        "cpu_count": os.cpu_count() or 1,
    }


def test_engine_scaling(once):
    row = once(run_scaling)
    lines = [
        f"replay batch: {row['trials']} trials "
        f"(machine: {row['cpu_count']} cores)",
        f"  workers=1: {row['serial_s']:8.3f} s",
        f"  workers=4: {row['pooled_s']:8.3f} s",
        f"  lockstep:  {row['lockstep_s']:8.3f} s",
        f"  speedup:   {row['speedup']:8.2f}x",
        f"  identical cycles:       {row['identical_cycles']}",
        f"  identical observations: {row['identical_observations']}",
    ]
    emit("engine_scaling", "\n".join(lines))
    emit_json("engine_scaling", row)

    # The hard contract: fan-out never changes results.
    assert row["identical_cycles"]
    assert row["identical_observations"]
    # The performance claim needs the cores to exist.
    if row["cpu_count"] >= 4:
        assert row["speedup"] >= 2.0
