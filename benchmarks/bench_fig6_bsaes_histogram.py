"""Figure 6 — BSAES runtime histogram, correct vs incorrect guesses.

Reproduces the paper's experiment: a 5-entry store queue, a 4-way
set-associative cache, the amplification gadget on one of the eight
AES-state stores, and many encryption calls per guess type.  The paper
reports a large, easily distinguishable (> 100 cycle) separation; the
shape claim checked here is exactly that.

Absolute cycle counts differ from the paper's gem5 x86 machine (theirs
cluster around 14,000 cycles because they run the full encryption; we
simulate the spill stage), but the separation — the figure's takeaway —
is reproduced, including under injected receiver noise.
"""

from conftest import emit, emit_json

from repro.analysis.histogram import TimingHistogram, apply_receiver_noise
from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer,
)

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ATTACKER_KEY = bytes(range(16, 32))


def run_histogram(runs_per_type=20, cache=None, batch_stats=None):
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY)
    samples = attack.histogram_runs(runs_per_type=runs_per_type,
                                    target_slot=4, cache=cache,
                                    batch_stats=batch_stats)
    return samples, attack.last_histogram_stats


def test_fig6_bsaes_histogram(once, results_cache):
    from repro.engine import SimStats
    batch_stats = SimStats()
    samples, run_stats = once(run_histogram, cache=results_cache,
                              batch_stats=batch_stats)
    histogram = TimingHistogram()
    histogram.extend("correct", samples["correct"])
    histogram.extend("incorrect", samples["incorrect"])
    separation = histogram.separation("correct", "incorrect")

    noisy = TimingHistogram()
    noisy.extend("correct",
                 apply_receiver_noise(samples["correct"], 10, seed=1))
    noisy.extend("incorrect",
                 apply_receiver_noise(samples["incorrect"], 10, seed=2))

    lines = [
        histogram.render(bin_width=16),
        "",
        f"correct:   {histogram.summary('correct')}",
        f"incorrect: {histogram.summary('incorrect')}",
        f"separation: {separation} cycles (paper: > 100)",
        f"misclassified with midpoint threshold: "
        f"{histogram.overlap_count('correct', 'incorrect')}",
        f"misclassified under sigma=10 receiver noise: "
        f"{noisy.overlap_count('correct', 'incorrect')}",
    ]
    emit("fig6_bsaes_histogram", "\n".join(lines))
    emit_json("fig6_bsaes_histogram",
              {"samples": samples, "separation": separation,
               "misclassified": histogram.overlap_count(
                   "correct", "incorrect"),
               "misclassified_noisy": noisy.overlap_count(
                   "correct", "incorrect"),
               "stats": run_stats,
               "engine_stats": batch_stats.as_dict()})

    assert separation > 100
    assert histogram.overlap_count("correct", "incorrect") == 0
    assert noisy.overlap_count("correct", "incorrect") == 0

    # The separation is manufactured by store-queue head-of-line
    # blocking: incorrect guesses (non-silent target store) accumulate
    # far more stall cycles than correct ones (see bench_fig5 for the
    # per-run attribution).
    def hol(kind):
        return run_stats[kind]["counters"].get(
            "pipeline.sq.head_of_line_stall_cycles", 0)
    assert hol("incorrect") > hol("correct")
