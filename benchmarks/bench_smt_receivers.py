"""SMT-sibling receivers (Sections IV-B3 & VI-B).

The operand-packing receiver of the paper's IV-B3 scenario and the
execution-unit contention channel its VI-B strength-reduction
discussion predicts, both run on the two-thread SMT model: in each,
the attacker measures only its *own* runtime.
"""

from conftest import emit

from repro.attacks.smt_attack import SMTContentionAttack, SMTPackingAttack


def run_experiment():
    packing = SMTPackingAttack()
    packing_rows = {value: packing.measure(value).attacker_cycles
                    for value in (5, 0xFFFF, 0x10000, 1 << 30)}
    contention = SMTContentionAttack()
    contention_rows = {value: contention.measure(value).attacker_cycles
                       for value in (0, 1, 123)}
    classified = {
        "packing(42 narrow)": packing.victim_operand_is_narrow(42),
        "packing(2^30 wide)": packing.victim_operand_is_narrow(1 << 30),
        "contention(0)": contention.victim_operand_is_zero(0),
        "contention(55)": contention.victim_operand_is_zero(55),
    }
    return packing_rows, contention_rows, classified


def test_smt_receivers(once):
    packing_rows, contention_rows, classified = once(run_experiment)
    lines = ["operand-packing receiver (attacker's own cycles, by "
             "victim operand):"]
    for value, cycles in packing_rows.items():
        lines.append(f"  victim operand {value:#12x}: {cycles} cycles")
    lines.append("")
    lines.append("divide-unit contention receiver:")
    for value, cycles in contention_rows.items():
        lines.append(f"  victim operand {value:#12x}: {cycles} cycles")
    lines.append("")
    for name, outcome in classified.items():
        lines.append(f"  classification {name}: {outcome}")
    emit("smt_receivers", "\n".join(lines))

    assert packing_rows[5] < packing_rows[1 << 30]
    assert packing_rows[0xFFFF] < packing_rows[0x10000]  # the boundary
    assert contention_rows[0] < contention_rows[123] - 100
    assert classified["packing(42 narrow)"]
    assert not classified["packing(2^30 wide)"]
    assert classified["contention(0)"]
    assert not classified["contention(55)"]
