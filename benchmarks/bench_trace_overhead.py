"""Overhead of the repro.trace layer on the Figure 6 workload.

Tracing is always compiled in; a run opts in per-spec via
``SimSpec(trace=TraceSpec())``, which builds a live
:class:`~repro.trace.TraceBuffer` in place of the no-op ``NULL_TRACE``
singleton and lets the hot per-cycle paths skip emission behind a
single ``enabled`` check.  This bench times the Figure 6 trial
workload in both modes, interleaved to cancel thermal / scheduling
drift, and asserts the disabled mode pays (at most) noise: its
best-of run must be within 5% of the traced mode's — i.e. the fast
path really is free, and enabling tracing is the only cost.

It also pins the determinism contract: both modes simulate the exact
same machine, so cycle counts match bitwise and only the ``trace``
payload differs.
"""

import time

from conftest import emit, emit_json

from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer,
)
from repro.engine import TraceSpec, execute_spec

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ATTACKER_KEY = bytes(range(16, 32))


def build_specs(trace, runs_per_type=6):
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY)
    return [spec.replace(trace=trace)
            for spec in attack.histogram_specs(
                runs_per_type=runs_per_type, target_slot=4)]


def time_once(specs):
    start = time.perf_counter()
    cycles = [execute_spec(spec).cycles for spec in specs]
    return time.perf_counter() - start, cycles


def test_trace_overhead(benchmark):
    traced_specs = build_specs(TraceSpec())
    untraced_specs = build_specs(None)

    def measure(repeats=3):
        traced_times, untraced_times = [], []
        traced_cycles = untraced_cycles = None
        for _ in range(repeats):
            elapsed, traced_cycles = time_once(traced_specs)
            traced_times.append(elapsed)
            elapsed, untraced_cycles = time_once(untraced_specs)
            untraced_times.append(elapsed)
        return (min(traced_times), min(untraced_times),
                traced_cycles, untraced_cycles)

    traced_s, untraced_s, traced_cycles, untraced_cycles = \
        benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = traced_s / untraced_s - 1
    lines = [
        f"fig6 workload, {len(traced_specs)} trials, best of 3:",
        f"  trace=TraceSpec()  {traced_s * 1e3:8.1f} ms",
        f"  trace=None         {untraced_s * 1e3:8.1f} ms",
        f"  traced-mode overhead: {overhead:+.1%}",
    ]
    emit("trace_overhead", "\n".join(lines))
    emit_json("trace_overhead",
              {"trials": len(traced_specs),
               "traced_seconds": traced_s,
               "untraced_seconds": untraced_s,
               "traced_overhead": overhead})

    # Tracing must never change the simulated machine.
    assert traced_cycles == untraced_cycles
    # Untraced mode is the baseline: it may not cost more than noise
    # relative to the mode that does strictly more work.
    assert untraced_s <= traced_s * 1.05
    # An untraced run carries no trace payload at all; a traced one
    # carries a non-empty event stream.
    assert execute_spec(untraced_specs[0]).trace == {}
    assert execute_spec(traced_specs[0]).trace["events"]
