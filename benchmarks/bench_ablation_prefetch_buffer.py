"""Ablation (Section V-B3) — prefetch buffers aggravate, not mitigate.

With a prefetch buffer in front of L1, the IMP's fills never land in
L1 — but "prefetch buffers are not applied to every cache level", so a
receiver probing L2 still sees the secret-dependent line.  The URG
survives; only the receiver's vantage point moves.
"""

from conftest import emit

from repro.attacks.covert_channel import PrimeProbeReceiver
from repro.attacks.dmp_attack import DMPSandboxAttack, URGAttackConfig

SECRET_BYTE = 0x42


def leak_via_level(prefetch_buffer_size, probe_level):
    config = URGAttackConfig(use_l2=True,
                             prefetch_buffer_size=prefetch_buffer_size)
    attack = DMPSandboxAttack(config)
    attack.runtime.place_kernel_secret(config.kernel_secret_base,
                                       bytes([SECRET_BYTE]))
    if probe_level == "l2":
        attack.receiver = PrimeProbeReceiver(
            attack.hierarchy, config.probe_buffer_base,
            cache=attack.hierarchy.l2)
        attack.receiver.miss_threshold = \
            attack.hierarchy.latencies.l2_hit
    result = attack.leak_byte(config.kernel_secret_base)
    return result


def run_ablation():
    return {
        ("none", "l1"): leak_via_level(0, "l1"),
        ("buffered", "l1"): leak_via_level(8, "l1"),
        ("buffered", "l2"): leak_via_level(8, "l2"),
    }


def test_ablation_prefetch_buffer(once):
    results = once(run_ablation)
    lines = [f"{'prefetch buffer':16s} {'probe level':12s} "
             f"{'leaked':>8s} {'correct':>8s}"]
    for (buffering, level), result in results.items():
        lines.append(f"{buffering:16s} {level:12s} "
                     f"{str(result.leaked_byte):>8s} "
                     f"{str(result.correct):>8s}")
    lines += [
        "",
        "Takeaway (paper): the buffer hides fills from L1 but the line "
        "still fills L2 —",
        "the receiver simply monitors an un-buffered level.",
    ]
    emit("ablation_prefetch_buffer", "\n".join(lines))

    assert results[("none", "l1")].correct
    assert not results[("buffered", "l1")].correct   # aggravated...
    assert results[("buffered", "l2")].correct       # ...not mitigated
