"""Ablation (Section VI-A2) — retrofitted constant-time mitigations.

For each retrofit: does it restore security, and what does it cost?

* targeted clearing vs the BSAES silent-store attack,
* spill masking vs the same attack,
* significance padding vs the early-terminating-multiplier probe
  (security) and vs operand packing (the performance price: padded
  operands never pack).
"""

from conftest import emit

from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer,
)
from repro.attacks.compsimp_attack import SignificanceProbe
from repro.attacks.packing_attack import OperandPackingAttack
from repro.defenses.retrofits import SpillMasker, pad_significance

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ATTACKER_KEY = bytes(range(16, 32))


def run_experiment():
    results = {}
    # Unprotected: full key recovery.
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY, seed=9)
    key, tries = attack.recover_key(oracle="functional")
    results["unprotected"] = (key == VICTIM_KEY, sum(tries))

    # Targeted clearing: leftovers are the public constant 0.
    cleared = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    cleared.leftover_planes = tuple([0] * 8)
    attack = BSAESSilentStoreAttack(cleared, ATTACKER_KEY, seed=9)
    key, tries = attack.recover_key(oracle="functional",
                                    max_tries=1 << 16)
    results["targeted clearing"] = (key == VICTIM_KEY, sum(tries))

    # Spill masking: per-call XOR pad.
    masked = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    masker = SpillMasker(pad=0x5AA5)
    masked.leftover_planes = tuple(
        masker.mask_value(p, 2) for p in masked.leftover_planes)
    attack = BSAESSilentStoreAttack(masked, ATTACKER_KEY, seed=9)
    key, tries = attack.recover_key(oracle="functional",
                                    max_tries=1 << 16)
    results["spill masking"] = (key == VICTIM_KEY, sum(tries))

    # Significance padding: security (timing flat) + performance cost.
    probe = SignificanceProbe()
    unprotected_curve = probe.significance_curve((1, 4))
    protected_curve = {
        width: probe.measure(
            pad_significance((1 << (8 * width - 1)) | 1), 3)
        for width in (1, 4)}
    packing = OperandPackingAttack(pairs=32)
    narrow_cycles = packing.measure(7).cycles
    padded_cycles = packing.measure(pad_significance(7)).cycles
    return results, unprotected_curve, protected_curve, \
        narrow_cycles, padded_cycles


def test_defense_retrofits(once):
    (results, unprotected_curve, protected_curve, narrow_cycles,
     padded_cycles) = once(run_experiment)
    lines = ["silent-store attack vs the BSAES server:",
             f"  {'mitigation':20s} {'key recovered':>14s} "
             f"{'oracle queries':>15s}"]
    for name, (recovered, queries) in results.items():
        lines.append(f"  {name:20s} {str(recovered):>14s} {queries:15d}")
    lines += [
        "",
        "early-terminating multiplier (cycles by operand width):",
        f"  unprotected: {unprotected_curve}",
        f"  MSB-padded:  {protected_curve}",
        "",
        "significance padding's performance price (operand packing):",
        f"  narrow operands: {narrow_cycles} cycles; "
        f"padded: {padded_cycles} cycles "
        f"({100 * (padded_cycles - narrow_cycles) / narrow_cycles:.0f}% "
        "slower)",
    ]
    emit("defense_retrofits", "\n".join(lines))

    assert results["unprotected"][0]
    assert not results["targeted clearing"][0]
    assert not results["spill masking"][0]
    assert len(set(protected_curve.values())) == 1
    assert padded_cycles > narrow_cycles
