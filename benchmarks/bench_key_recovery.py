"""Section V-A3 — BSAES key-recovery cost.

Full recovery of an AES-128 key through the silent-store equality
oracle: per-slot oracle-query counts against the paper's bound (up to
65,536 tries per 16-bit intermediate, at most 8 x 65,536 = 524,288
total), with every recovered plane re-confirmed through the *timed*
amplification-gadget channel.
"""

import statistics

from conftest import emit, emit_json

from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer, NUM_SLOTS,
)

VICTIM_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
ATTACKER_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def run_recovery():
    server = BSAESVictimServer(VICTIM_KEY, b"GET /index.html ")
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY, seed=77)
    key, tries = attack.recover_key(oracle="functional",
                                    max_tries=1 << 19)
    confirmed = attack.confirm_planes_timed(
        list(server.leftover_planes))
    return server, key, tries, confirmed, attack.timed_queries


def test_key_recovery(once):
    server, key, tries, confirmed, timed_queries = once(run_recovery)
    lines = [f"{'slot':>5s} {'oracle queries':>15s}"]
    for slot, count in enumerate(tries):
        lines.append(f"{slot:5d} {count:15d}")
    total = sum(tries)
    lines += [
        "",
        f"victim key recovered: {key == VICTIM_KEY} ({key.hex()})",
        f"total oracle queries: {total} "
        f"(paper bound: <= 524,288 worst case; "
        f"expectation 8 x 32,768 = 262,144)",
        f"mean per slot: {statistics.mean(tries):.0f} "
        f"(expectation ~32,768 for uniform 16-bit values)",
        f"planes re-confirmed through the timed channel: "
        f"{confirmed}/{NUM_SLOTS} ({timed_queries} timed runs)",
    ]
    emit("key_recovery", "\n".join(lines))
    emit_json("key_recovery",
              {"recovered": key == VICTIM_KEY, "key": key.hex(),
               "per_slot_tries": list(tries), "total_tries": total,
               "confirmed_slots": confirmed,
               "timed_queries": timed_queries})

    assert key == VICTIM_KEY
    assert confirmed == NUM_SLOTS
    # The paper's hard bound: at most 65,536 distinct-value tries per
    # slot, 524,288 total.
    assert all(count <= 65_536 for count in tries)
    assert total <= 524_288
