"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure from the paper: it prints
the same rows/series the paper reports (run with ``-s`` to see them,
or read ``benchmarks/results/*.txt`` afterwards) and asserts the
*shape* claims — who wins, by roughly what factor, where crossovers
fall — per EXPERIMENTS.md.

Benches additionally persist structured results: ``emit_json`` writes
``benchmarks/results/<name>.json`` next to the rendered ``.txt``, so
downstream tooling can diff runs without re-parsing tables.
``results_cache`` hands benches a shared on-disk
:class:`repro.engine.ResultCache` under ``benchmarks/results/cache/``
(delete the directory to force full re-simulation).
"""

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name, text):
    """Print a bench's table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def emit_json(name, payload):
    """Persist a bench's structured result as JSON."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner


@pytest.fixture
def results_cache():
    """A persistent engine result cache shared by the benches."""
    from repro.engine import ResultCache
    return ResultCache(path=os.path.join(RESULTS_DIR, "cache"))
