"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure from the paper: it prints
the same rows/series the paper reports (run with ``-s`` to see them,
or read ``benchmarks/results/*.txt`` afterwards) and asserts the
*shape* claims — who wins, by roughly what factor, where crossovers
fall — per EXPERIMENTS.md.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name, text):
    """Print a bench's table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
