"""Figure 5 — the amplification gadget.

Runs the single-store timing probe with and without the gadget's
preconditions, reporting how the silent/non-silent timing difference is
manufactured: without the gadget, silence is worth almost nothing; with
it, a non-silent store pays a full memory round trip plus store-queue
head-of-line blocking.

All four probes are declarative engine specs run as one batch.
"""

from conftest import emit, emit_json

from repro.attacks.amplification import amplified_probe_spec
from repro.engine import run_batch

SECRET = 0x1234


def run_experiment():
    specs = [
        amplified_probe_spec(SECRET, SECRET, gadget=True,
                             label="gadget_silent"),
        amplified_probe_spec(SECRET, 0x4321, gadget=True,
                             label="gadget_nonsilent"),
        amplified_probe_spec(SECRET, SECRET, gadget=False,
                             label="plain_silent"),
        amplified_probe_spec(SECRET, 0x4321, gadget=False,
                             label="plain_nonsilent"),
    ]
    results = run_batch(specs)
    return ({result.label: result.cycles for result in results},
            {result.label: result.metrics for result in results})


def test_fig5_amplification(benchmark):
    rows, stats = benchmark(run_experiment)
    gadget_gap = rows["gadget_nonsilent"] - rows["gadget_silent"]
    plain_gap = rows["plain_nonsilent"] - rows["plain_silent"]
    lines = [
        f"{'scenario':22s} {'cycles':>7s}",
        f"{'plain, silent':22s} {rows['plain_silent']:7d}",
        f"{'plain, non-silent':22s} {rows['plain_nonsilent']:7d}",
        f"{'gadget, silent':22s} {rows['gadget_silent']:7d}",
        f"{'gadget, non-silent':22s} {rows['gadget_nonsilent']:7d}",
        "",
        f"unamplified timing difference: {plain_gap} cycles",
        f"amplified timing difference:   {gadget_gap} cycles",
    ]
    emit("fig5_amplification", "\n".join(lines))
    emit_json("fig5_amplification",
              {"cycles": rows, "amplified_gap": gadget_gap,
               "plain_gap": plain_gap, "stats": stats})

    # Paper: out-of-order execution hides a lone store's silence; the
    # gadget manufactures a > 100-cycle difference.
    assert abs(plain_gap) < 20
    assert gadget_gap > 100
    assert gadget_gap > 5 * max(1, abs(plain_gap))

    # The amplification is attributable in the metrics: a non-silent
    # store under the gadget head-of-line blocks the store queue for
    # most of the manufactured gap; the silent run barely stalls.
    def hol(label):
        return stats[label]["counters"].get(
            "pipeline.sq.head_of_line_stall_cycles", 0)
    hol_gap = hol("gadget_nonsilent") - hol("gadget_silent")
    assert hol_gap > 0.5 * gadget_gap
