"""Figure 5 — the amplification gadget.

Runs the single-store timing probe with and without the gadget's
preconditions, reporting how the silent/non-silent timing difference is
manufactured: without the gadget, silence is worth almost nothing; with
it, a non-silent store pays a full memory round trip plus store-queue
head-of-line blocking.
"""

from conftest import emit

from repro.attacks.amplification import (
    GadgetLayout, build_timing_probe, plant_flush_pointer,
)
from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def measure_with_gadget(matches):
    memory = FlatMemory(1 << 20)
    memory.write(0x8000, 0x1234, 2)
    l1 = Cache(num_sets=64, ways=4)
    hierarchy = MemoryHierarchy(memory, l1=l1)
    layout = GadgetLayout(target_addr=0x8000, delay_ptr_addr=0x4_0000,
                          flush_area_base=0x5_0000)
    plant_flush_pointer(memory, layout, l1)
    program = build_timing_probe(layout, l1,
                                 0x1234 if matches else 0x4321)
    cpu = CPU(program, hierarchy, config=CPUConfig(store_queue_size=5),
              plugins=[SilentStorePlugin()])
    cpu.run()
    return cpu.stats.cycles


def measure_without_gadget(matches):
    memory = FlatMemory(1 << 20)
    memory.write(0x8000, 0x1234, 2)
    l1 = Cache(num_sets=64, ways=4)
    hierarchy = MemoryHierarchy(memory, l1=l1)
    asm = Assembler()
    asm.li(1, 0x8000)
    asm.load(2, 1, 0)
    asm.fence()
    asm.li(6, 0x1234 if matches else 0x4321)
    asm.store(6, 1, 0, width=2)
    asm.fence()
    asm.halt()
    cpu = CPU(asm.assemble(), hierarchy,
              config=CPUConfig(store_queue_size=5),
              plugins=[SilentStorePlugin()])
    cpu.run()
    return cpu.stats.cycles


def run_experiment():
    return {
        "gadget_silent": measure_with_gadget(True),
        "gadget_nonsilent": measure_with_gadget(False),
        "plain_silent": measure_without_gadget(True),
        "plain_nonsilent": measure_without_gadget(False),
    }


def test_fig5_amplification(benchmark):
    rows = benchmark(run_experiment)
    gadget_gap = rows["gadget_nonsilent"] - rows["gadget_silent"]
    plain_gap = rows["plain_nonsilent"] - rows["plain_silent"]
    lines = [
        f"{'scenario':22s} {'cycles':>7s}",
        f"{'plain, silent':22s} {rows['plain_silent']:7d}",
        f"{'plain, non-silent':22s} {rows['plain_nonsilent']:7d}",
        f"{'gadget, silent':22s} {rows['gadget_silent']:7d}",
        f"{'gadget, non-silent':22s} {rows['gadget_nonsilent']:7d}",
        "",
        f"unamplified timing difference: {plain_gap} cycles",
        f"amplified timing difference:   {gadget_gap} cycles",
    ]
    emit("fig5_amplification", "\n".join(lines))

    # Paper: out-of-order execution hides a lone store's silence; the
    # gadget manufactures a > 100-cycle difference.
    assert abs(plain_gap) < 20
    assert gadget_gap > 100
    assert gadget_gap > 5 * max(1, abs(plain_gap))
