"""Figure 5 — the amplification gadget.

Runs the single-store timing probe with and without the gadget's
preconditions, reporting how the silent/non-silent timing difference is
manufactured: without the gadget, silence is worth almost nothing; with
it, a non-silent store pays a full memory round trip plus store-queue
head-of-line blocking.

All four probes are declarative engine specs run as one batch.
"""

from conftest import emit, emit_json

from repro.attacks.amplification import amplified_probe_spec
from repro.engine import run_batch

SECRET = 0x1234


def run_experiment():
    specs = [
        amplified_probe_spec(SECRET, SECRET, gadget=True,
                             label="gadget_silent"),
        amplified_probe_spec(SECRET, 0x4321, gadget=True,
                             label="gadget_nonsilent"),
        amplified_probe_spec(SECRET, SECRET, gadget=False,
                             label="plain_silent"),
        amplified_probe_spec(SECRET, 0x4321, gadget=False,
                             label="plain_nonsilent"),
    ]
    return {result.label: result.cycles
            for result in run_batch(specs)}


def test_fig5_amplification(benchmark):
    rows = benchmark(run_experiment)
    gadget_gap = rows["gadget_nonsilent"] - rows["gadget_silent"]
    plain_gap = rows["plain_nonsilent"] - rows["plain_silent"]
    lines = [
        f"{'scenario':22s} {'cycles':>7s}",
        f"{'plain, silent':22s} {rows['plain_silent']:7d}",
        f"{'plain, non-silent':22s} {rows['plain_nonsilent']:7d}",
        f"{'gadget, silent':22s} {rows['gadget_silent']:7d}",
        f"{'gadget, non-silent':22s} {rows['gadget_nonsilent']:7d}",
        "",
        f"unamplified timing difference: {plain_gap} cycles",
        f"amplified timing difference:   {gadget_gap} cycles",
    ]
    emit("fig5_amplification", "\n".join(lines))
    emit_json("fig5_amplification",
              {"cycles": rows, "amplified_gap": gadget_gap,
               "plain_gap": plain_gap})

    # Paper: out-of-order execution hides a lone store's silence; the
    # gadget manufactures a > 100-cycle difference.
    assert abs(plain_gap) < 20
    assert gadget_gap > 100
    assert gadget_gap > 5 * max(1, abs(plain_gap))
