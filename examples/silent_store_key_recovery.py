"""Section V-A end to end: break "constant-time" bitslice AES-128 with
silent stores and the amplification gadget.

The victim is a server worker that encrypts with a secret key and
leaves its final SubBytes bit-planes on the stack.  The attacker
triggers encryptions with its own key, measures whether one targeted
store was silent (the > 100-cycle amplified timing difference of
Figure 6), searches plaintexts until each of the eight 16-bit
intermediates matches, and inverts the key schedule.

Run:  python examples/silent_store_key_recovery.py
"""

import time

from repro.analysis import TimingHistogram
from repro.attacks import BSAESSilentStoreAttack, BSAESVictimServer

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ATTACKER_KEY = bytes(range(16, 32))


def main():
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY)

    print("=== Step 1: calibrate the amplified timing channel ===")
    silent, nonsilent, threshold = attack.calibrate(target_slot=4)
    print(f"silent store:     {silent} cycles")
    print(f"non-silent store: {nonsilent} cycles")
    print(f"gap: {nonsilent - silent} cycles (paper: > 100)\n")

    print("=== Step 2: the Figure 6 histogram ===")
    samples = attack.histogram_runs(runs_per_type=10, target_slot=4)
    histogram = TimingHistogram()
    histogram.extend("correct guess", samples["correct"])
    histogram.extend("incorrect guess", samples["incorrect"])
    print(histogram.render(bin_width=16))
    print()

    print("=== Step 3: recover the eight 16-bit intermediates ===")
    started = time.perf_counter()
    key, tries = attack.recover_key(oracle="functional")
    elapsed = time.perf_counter() - started
    for slot, count in enumerate(tries):
        print(f"  slot {slot}: found after {count:6d} oracle queries")
    print(f"total queries: {sum(tries)} "
          f"(paper bound: at most 524,288)\n")

    print("=== Step 4: confirm each plane through the timed channel ===")
    confirmed = attack.confirm_planes_timed(
        list(server.leftover_planes))
    print(f"planes confirmed by timing: {confirmed}/8\n")

    print("=== Step 5: invert the key schedule ===")
    print(f"recovered key: {key.hex()}")
    print(f"victim key:    {VICTIM_KEY.hex()}")
    print(f"match: {key == VICTIM_KEY}  (search took {elapsed:.1f}s)")


if __name__ == "__main__":
    main()
