"""Using the MLD framework as an audit tool (Section IV-A).

Suppose you are designing a new microarchitectural optimization — say,
an "operand-reuse adder" that skips execution when an ADD repeats the
immediately preceding ADD's operands.  Before building it, write its
MLD and let the framework tell you what it leaks, under which attacker
preconditionings, and how fast an active attacker can extract a secret.

Run:  python examples/leakage_audit.py
"""

from repro.core import (
    InputKind, InstSnapshot, MLD, MLDInput, classify_mld,
    experiments_to_identify, induced_partition, leakage_bits,
)


def build_proposed_mld():
    """The optimization under audit: hit iff operands repeat."""
    def outcome(i1, last_operands):
        return int(tuple(i1.args) == tuple(last_operands))

    return MLD(
        "operand_reuse_adder",
        [MLDInput(InputKind.INST, "i1"),
         MLDInput(InputKind.UARCH, "last_operands")],
        outcome,
        "Skips an ADD when its operands equal the previous ADD's.")


def main():
    mld = build_proposed_mld()
    print(f"Descriptor under audit: {mld!r}")
    print(f"  {mld.description}\n")

    print("=== 1. Classification (Table II methodology) ===")
    print(f"  {classify_mld(mld).value}")
    print("  -> persistent Uarch state participates: active attackers "
          "can precondition it.\n")

    print("=== 2. Outcome partition and channel capacity ===")
    domain = [(InstSnapshot(args=(a, b)), (3, 4))
              for a in range(8) for b in range(8)]
    partition = mld.partition(domain)
    print(f"  outcomes over an 8x8 operand domain: {len(partition)}")
    print(f"  capacity bound: {mld.capacity_bits(domain):.2f} bits "
          "per observation\n")

    print("=== 3. What leaks, per preconditioning (lattice analysis) ===")
    secret_domain = list(range(16))

    def outcome_fn(secret, precondition):
        return mld(InstSnapshot(args=(secret, 7)), precondition)

    for precondition in ((7, 7), (3, 7)):
        blocks = induced_partition(outcome_fn, secret_domain,
                                   (precondition,))
        bits = leakage_bits(outcome_fn, secret_domain, (precondition,))
        print(f"  attacker preconditions last_operands={precondition}: "
              f"{len(blocks)} distinguishable classes, "
              f"{bits:.3f} bits/observation")
    print()

    print("=== 4. Active replay attack cost ===")
    preconditions = [(guess, 7) for guess in secret_domain]
    costs = experiments_to_identify(outcome_fn, secret_domain,
                                    preconditions)
    worst = max(v for v in costs.values() if v is not None)
    print(f"  an attacker replaying with chosen preconditionings pins "
          f"down any 4-bit secret\n  in at most {worst} experiments "
          "(equality transmitter: linear in the domain,\n  exponential "
          "in width — see Section IV-C4 and "
          "benchmarks/bench_replay_narrowing.py).\n")

    print("Verdict: the proposal is a stateful instruction-centric "
          "equality transmitter,\nexactly the class of silent stores "
          "and Sv computation reuse (Table I columns SS/CR).\n"
          "Consider keying on operand *names* instead (the paper's "
          "Sn recommendation, VI-A3).")


if __name__ == "__main__":
    main()
