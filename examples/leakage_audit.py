"""Auditing leakage twice: at design time and at code-review time.

Part 1 (Section IV-A) audits a *proposed optimization* with the MLD
framework: write the descriptor, and the framework says what it leaks,
to which attackers, and how fast.

Part 2 (the ``repro.lint`` checker) audits a *program* against the
already-built optimizations: per static instruction, can secret data
reach the operand taps each optimization's MLD observes?  The verdict
comes with a taint-flow witness, and the differential harness then
runs secret-pair trials through the engine to confirm every dynamic
divergence was statically flagged — the checker's no-false-negatives
contract.

Run:  python examples/leakage_audit.py
"""

import os

from repro.core import (
    InputKind, InstSnapshot, MLD, MLDInput, classify_mld,
    induced_partition, leakage_bits,
)
from repro.engine import PluginSpec, SimSpec, TaintSpec
from repro.isa.text import assemble_file
from repro.lint import check_soundness, lint_program, lint_spec

PROGRAMS = os.path.join(os.path.dirname(__file__), "programs")


def build_proposed_mld():
    """The optimization under audit: hit iff operands repeat."""
    def outcome(i1, last_operands):
        return int(tuple(i1.args) == tuple(last_operands))

    return MLD(
        "operand_reuse_adder",
        [MLDInput(InputKind.INST, "i1"),
         MLDInput(InputKind.UARCH, "last_operands")],
        outcome,
        "Skips an ADD when its operands equal the previous ADD's.")


def design_time_audit():
    mld = build_proposed_mld()
    print(f"Descriptor under audit: {mld!r}")
    print(f"  {mld.description}\n")

    print("--- classification (Table II methodology) ---")
    print(f"  {classify_mld(mld).value}")
    print("  -> persistent Uarch state participates: active attackers "
          "can precondition it.\n")

    print("--- what leaks, per preconditioning (lattice analysis) ---")
    secret_domain = list(range(16))

    def outcome_fn(secret, precondition):
        return mld(InstSnapshot(args=(secret, 7)), precondition)

    for precondition in ((7, 7), (3, 7)):
        blocks = induced_partition(outcome_fn, secret_domain,
                                   (precondition,))
        bits = leakage_bits(outcome_fn, secret_domain, (precondition,))
        print(f"  attacker preconditions last_operands={precondition}: "
              f"{len(blocks)} distinguishable classes, "
              f"{bits:.3f} bits/observation")
    print("\nVerdict: a stateful instruction-centric equality "
          "transmitter, the class of\nsilent stores and Sv computation "
          "reuse (Table I columns SS/CR).\n")


def code_review_audit():
    print("--- the gadget, statically ---")
    program = assemble_file(os.path.join(PROGRAMS, "leaky_window.s"))
    report = lint_program(
        program,
        opts=("silent-stores", "computation-simplification",
              "value-prediction", "operand-packing"),
        program_name="leaky_window.s")
    print(report.render())
    print()

    print("--- the clean control ---")
    clean = assemble_file(os.path.join(PROGRAMS, "ct_checksum.s"))
    clean_report = lint_program(
        clean,
        opts=("silent-stores", "computation-simplification",
              "value-prediction", "operand-packing"),
        program_name="ct_checksum.s")
    print(clean_report.render())
    print()

    print("--- dynamic confirmation (soundness harness) ---")
    spec = SimSpec(
        program=program,
        plugins=(PluginSpec.of("silent-stores"),),
        # secret = 1 makes the multiply an identity, so the baseline
        # store rewrites the old value (silent); every secret-flipped
        # variant scales it (non-silent) — the equality channel,
        # observed end to end.
        mem_writes=((0x1000, 1, 8), (0x2000, 0x4321, 8)),
        taint=TaintSpec.of(secret=((0x1000, 0x1008),)),
        label="leaky_window/ss")
    result = check_soundness(spec, report=lint_spec(spec))
    print(f"  statically flagged: {', '.join(result.flagged) or 'none'}")
    print(f"  dynamically divergent over {result.variants} secret-pair "
          f"variants: {', '.join(result.divergent) or 'none'}")
    print(f"  unflagged divergences (checker bugs): "
          f"{', '.join(result.unflagged) or 'none'}")
    assert result.ok, "soundness violation!"


def main():
    print("=== Part 1: design-time audit of a proposed optimization "
          "===\n")
    design_time_audit()
    print("=== Part 2: code-review audit of a program (repro.lint) "
          "===\n")
    code_review_audit()
    print("\nSame question both times — can a secret reach the MLD's "
          "inputs? — asked of\na design in Part 1 and of a binary in "
          "Part 2.")


if __name__ == "__main__":
    main()
