"""Figures 1 & 7 end to end: a verified sandbox program + the 3-level
indirect-memory prefetcher = a universal read gadget.

The attacker's eBPF-style program passes the verifier (its NULL checks
are bounds checks in disguise) and never reads out of bounds itself.
The hardware prefetcher, which has no notion of bounds, dereferences
the attacker-planted target value and transmits the secret byte over a
Prime+Probe cache channel.

Run:  python examples/sandbox_prefetcher_leak.py
"""

from repro.attacks import DMPSandboxAttack, build_attacker_program
from repro.sandbox import Verifier, VerifierError

SECRET = b"The kernel's deepest secret"


def main():
    print("=== Step 1: the sandbox does its job (in software) ===")
    try:
        Verifier().verify(build_attacker_program(16, null_checks=False))
        raise SystemExit("verifier accepted an unsafe program?!")
    except VerifierError as error:
        print(f"unchecked program rejected: {error}")
    checked = build_attacker_program(16, null_checks=True)
    states = Verifier().verify(checked)
    print(f"NULL-checked program accepted ({states} abstract states "
          "explored)\n")

    print("=== Step 2: set the trap ===")
    attack = DMPSandboxAttack()
    secret_addr = attack.config.kernel_secret_base
    attack.runtime.place_kernel_secret(secret_addr, SECRET)
    print(f"sandbox:        [{attack.runtime.sandbox_base:#x}, "
          f"{attack.runtime.sandbox_end:#x})")
    print(f"kernel secret:  {secret_addr:#x} (far outside)\n")

    print("=== Step 3: leak it, byte by byte ===")
    results = attack.leak_bytes(secret_addr, len(SECRET))
    leaked = bytes(r.leaked_byte if r.leaked_byte is not None else 0x3F
                   for r in results)
    print(f"leaked:  {leaked!r}")
    print(f"actual:  {SECRET!r}")
    correct = sum(r.correct for r in results)
    print(f"accuracy: {correct}/{len(results)}\n")

    print("=== What the prefetcher learned (no software told it!) ===")
    for link in attack.last_imp.links:
        print(f"  load@pc{link.producer_pc} feeds load@pc"
              f"{link.consumer_pc}: addr = {link.base:#x} + "
              f"(value << {link.shift})   [confidence "
              f"{link.confidence}]")
    print("\nThe verified program never touched the secret; the "
          "prefetcher read it and\nbroadcast it through the cache — "
          "the universal read gadget of Figure 1.")


if __name__ == "__main__":
    main()
