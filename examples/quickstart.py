"""Quickstart: assemble a program, run it on the out-of-order core,
and watch an optimization turn data into time.

Run:  python examples/quickstart.py
"""

from repro.core import render_table
from repro.isa import Assembler
from repro.memory import Cache, FlatMemory, MemoryHierarchy
from repro.optimizations import ComputationSimplificationPlugin
from repro.pipeline import CPU, CPUConfig


def build_program(secret):
    """A "constant-time" kernel: multiply a secret by a constant in a
    fixed-length chain.  Same instructions, same memory accesses, same
    control flow — for every secret."""
    asm = Assembler()
    asm.li(1, secret)
    asm.li(2, 0x1234)
    for _ in range(32):
        asm.mul(3, 1, 2)
    asm.halt()
    return asm.assemble()


def run(secret, plugins=()):
    memory = FlatMemory(1 << 16)
    hierarchy = MemoryHierarchy(memory, l1=Cache())
    cpu = CPU(build_program(secret), hierarchy,
              config=CPUConfig(latency_mul=6), plugins=list(plugins))
    cpu.run()
    return cpu.stats


def main():
    print("=== The leakage landscape (Table I), derived from the "
          "optimization registry ===\n")
    print(render_table())

    print("\n=== Zero-skip multiplication vs constant-time code ===\n")
    for label, plugins in (("baseline", ()),
                           ("with computation simplification",
                            (ComputationSimplificationPlugin(),))):
        cycles = {secret: run(secret, plugins).cycles
                  for secret in (0, 1, 0xDEAD)}
        print(f"{label}:")
        for secret, count in cycles.items():
            print(f"  secret={secret:#8x}  ->  {count} cycles")
        constant_time = len(set(cycles.values())) == 1
        print(f"  constant time? {constant_time}\n")

    print("The baseline machine runs the kernel in the same number of "
          "cycles for every\nsecret; add the zero-skip multiplier and "
          "the run time reveals whether the\nsecret is zero — no "
          "speculation, no memory access pattern, just Table I's\n"
          "'Operands / Int mul: S -> U' cell in action.")


if __name__ == "__main__":
    main()
