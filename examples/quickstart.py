"""Quickstart: assemble a program, run it on the out-of-order core,
and watch an optimization turn data into time.

Run:  python examples/quickstart.py
"""

from repro.core import render_table
from repro.engine import HierarchySpec, PluginSpec, SimSpec, run_batch
from repro.isa import Assembler
from repro.pipeline import CPUConfig

SECRETS = (0, 1, 0xDEAD)


def build_program(secret):
    """A "constant-time" kernel: multiply a secret by a constant in a
    fixed-length chain.  Same instructions, same memory accesses, same
    control flow — for every secret."""
    asm = Assembler()
    asm.li(1, secret)
    asm.li(2, 0x1234)
    for _ in range(32):
        asm.mul(3, 1, 2)
    asm.halt()
    return asm.assemble()


def kernel_spec(secret, plugins=()):
    """One declarative simulation: program + config + plug-ins."""
    return SimSpec(program=build_program(secret),
                   config=CPUConfig(latency_mul=6),
                   hierarchy=HierarchySpec(memory_size=1 << 16),
                   plugins=tuple(plugins), label=f"{secret:#x}")


def main():
    print("=== The leakage landscape (Table I), derived from the "
          "optimization registry ===\n")
    print(render_table())

    print("\n=== Zero-skip multiplication vs constant-time code ===\n")
    simplify = PluginSpec.of("computation-simplification")
    for label, plugins in (("baseline", ()),
                           ("with computation simplification",
                            (simplify,))):
        results = run_batch([kernel_spec(secret, plugins)
                             for secret in SECRETS])
        cycles = {secret: result.cycles
                  for secret, result in zip(SECRETS, results)}
        print(f"{label}:")
        for secret, count in cycles.items():
            print(f"  secret={secret:#8x}  ->  {count} cycles")
        constant_time = len(set(cycles.values())) == 1
        print(f"  constant time? {constant_time}\n")

    print("The baseline machine runs the kernel in the same number of "
          "cycles for every\nsecret; add the zero-skip multiplier and "
          "the run time reveals whether the\nsecret is zero — no "
          "speculation, no memory access pattern, just Table I's\n"
          "'Operands / Int mul: S -> U' cell in action.")


if __name__ == "__main__":
    main()
