"""Section IV-B3's SMT scenario: the receiver is the victim's sibling
hardware thread, and it measures nothing but its own runtime.

Two channels on the two-thread core:

* operand packing — the attacker keeps its own operands narrow, so
  whether its ops share the single ALU slot depends strictly on the
  *victim's* operand widths;
* execution-unit contention — the victim's simplified (zero-operand)
  divides free the shared divide unit, and the attacker's own divide
  stream speeds up.

Run:  python examples/smt_sibling_receiver.py
"""

from repro.attacks import SMTContentionAttack, SMTPackingAttack


def main():
    print("=== Operand packing across SMT siblings ===")
    packing = SMTPackingAttack()
    for value in (5, 0xFFFF, 0x10000, 1 << 30):
        result = packing.measure(value)
        print(f"victim operand {value:#12x}: attacker ran in "
              f"{result.attacker_cycles} cycles")
    print()
    for value in (42, 1 << 30):
        narrow = packing.victim_operand_is_narrow(value)
        print(f"receiver classifies victim operand {value:#x} as "
              f"{'narrow (< 2^16)' if narrow else 'wide'}")

    print("\n=== Divide-unit contention ===")
    contention = SMTContentionAttack()
    for value in (0, 123):
        result = contention.measure(value)
        print(f"victim operand {value:#6x}: attacker ran in "
              f"{result.attacker_cycles} cycles")
    print(f"\nreceiver says the victim's operand is zero: "
          f"{contention.victim_operand_is_zero(0)} (secret=0), "
          f"{contention.victim_operand_is_zero(55)} (secret=55)")

    print("\nIn both cases the attacker thread touched none of the "
          "victim's data and read\nno shared memory — its own "
          "instruction timing was the entire channel.")


if __name__ == "__main__":
    main()
