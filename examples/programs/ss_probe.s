# The paper's replay probe, in eight instructions: store a guess over
# a secret word and time the store.  A silent store (guess == secret)
# retires without a memory write — the timing difference is the
# oracle.  The checker flags the store's MLD taps: the old memory
# value at the target address is secret.

.secret 0x4000 +8          # victim word the probe overwrites

    li x1, 0x4000
    li x2, 0x5a5a          # the attacker's guess
    rdcycle x3
    store x2, 0(x1)        # silent iff guess matches the secret
    fence
    rdcycle x4
    sub x5, x4, x3         # probe timing — architecturally public
    halt
