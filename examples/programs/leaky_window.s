# A deliberately leaky window function: loads a secret word, mixes it
# with attacker-controlled data, and both computes and stores on it.
# Every optimization family in the paper finds something here —
# `python -m repro lint examples/programs/leaky_window.s` lists them.

.secret 0x1000 +8          # the key word
.public 0x2000 +8          # attacker-controlled input

    li x1, 0x1000
    li x2, 0x2000
    load x3, 0(x1)         # secret into x3
    load x4, 0(x2)         # public into x4
    mul x5, x3, x4         # zero-skip / early-termination on secret
    xor x6, x3, x4         # packing sees secret operand width
    store x5, 0(x2)        # silent iff old value matches — equality leak
    beq x3, x0, skip       # secret-dependent branch: implicit flows below
    addi x7, x7, 1
skip:
    halt
