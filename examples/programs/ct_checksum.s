# A constant-time checksum over a public buffer, with a secret key
# resident in the same address space.  The secret is declared but never
# flows into any computation, so every contract reports SAFE — the
# checker proves non-interference for this program, not just absence
# of known-bad patterns.  Straight-line on purpose: constant-time code
# has no data-dependent control flow, and fixed addresses let the
# checker prove the loads never alias the secret region.

.secret 0x1000 +16         # key material, never touched
.public 0x3000 +32         # the message buffer

    li x1, 0x3000
    load x4, 0(x1)
    load x5, 8(x1)
    load x6, 16(x1)
    load x7, 24(x1)
    add x3, x4, x5
    add x3, x3, x6
    add x3, x3, x7
    store x3, 0(x1)        # public result over public memory
    halt
