# A secret-gated store the sticky checker gets wrong.  The branch
# compares the secret against itself — it is tainted, but both arms
# reconverge immediately and the store after the join touches only
# public values, so the silent-store MLD cannot observe the secret.
# The path-blind (sticky) analysis poisons everything after the first
# tainted branch and flags the store anyway; the post-dominator
# analysis clears control taint at the join and proves the program
# SAFE under the silent-stores contract:
#   python -m repro lint examples/programs/gated_store.s --opts silent-stores

.secret 0x140 +8           # the key word

    li x1, 0x140
    load x3, 0(x1)         # secret into x3
    beq x3, x3, join       # tainted branch, arms reconverge at join
    addi x9, x0, 1         # influence region: never reached
join:
    li x6, 9
    store x6, 0x100(x0)    # public value over public memory
    halt
